package precomp

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"deepsecure/internal/ot"
)

// specSend runs the sender side of a speculative flight: one Send per
// issued step, in issue order (the wire carries the corrections
// back-to-back, so the sender's loop drains them at its own pace).
func specSend(sp *SenderPool, stepPairs [][][2]ot.Msg) chan error {
	done := make(chan error, 1)
	go func() {
		for _, pairs := range stepPairs {
			if err := sp.Send(pairs); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	return done
}

func checkUnmasked(t *testing.T, got []ot.Msg, pairs [][2]ot.Msg, choices []bool) {
	t.Helper()
	for j := range choices {
		want := pairs[j][0]
		if choices[j] {
			want = pairs[j][1]
		}
		if got[j] != want {
			t.Fatalf("OT %d: unmasked %x, want pairs[%d][%v]", j, got[j][:4], j, choices[j])
		}
	}
}

// TestSpeculativeIssueCollect pins the speculative protocol's core
// property: IssueAll puts every step's corrections on the wire in one
// flight — advancing the pool's FIFO state (Seq, Available) immediately,
// before any response is collected — and each Collect then unmasks its
// step's labels exactly as the strict per-step exchange would have.
func TestSpeculativeIssueCollect(t *testing.T) {
	sp, rp, cleanup := pools(t, PoolConfig{Capacity: 512}, 1100)
	defer cleanup()
	rng := rand.New(rand.NewSource(1101))
	sizes := []int{10, 33, 0, 7} // crosses the 8-bit packing boundary; one empty step
	steps := make([][]bool, len(sizes))
	stepPairs := make([][][2]ot.Msg, len(sizes))
	total := 0
	for i, n := range sizes {
		steps[i] = randChoices(rng, n)
		stepPairs[i] = randPairs(rng, n)
		total += n
	}

	done := specSend(sp, stepPairs)
	prs, err := rp.IssueAll(steps)
	if err != nil {
		t.Fatalf("IssueAll: %v", err)
	}
	if len(prs) != len(steps) {
		t.Fatalf("IssueAll returned %d pending batches, want %d", len(prs), len(steps))
	}
	// The loosening, observable: the whole inference's pool consumption is
	// complete at issue time — a successor could refill or issue now.
	if rp.Seq() != int64(total) {
		t.Fatalf("Seq after issue = %d, want %d (FIFO must advance at issue, not collect)", rp.Seq(), total)
	}
	if rp.Available() != 512-total {
		t.Fatalf("Available after issue = %d, want %d", rp.Available(), 512-total)
	}
	for i, pr := range prs {
		got, err := pr.Collect()
		if err != nil {
			t.Fatalf("Collect %d: %v", i, err)
		}
		if len(got) != sizes[i] {
			t.Fatalf("Collect %d returned %d msgs, want %d", i, len(got), sizes[i])
		}
		checkUnmasked(t, got, stepPairs[i], steps[i])
	}
	if err := <-done; err != nil {
		t.Fatalf("sender: %v", err)
	}
	st := rp.Stats()
	if st.Consumed != int64(total) || st.Batches != int64(len(steps)) {
		t.Fatalf("stats Consumed=%d Batches=%d, want %d/%d", st.Consumed, st.Batches, total, len(steps))
	}
}

// TestSpeculativeCollectOrdering starts the collects out of walk order:
// later tickets block until earlier ones release, so every step still
// unmasks against its own step's response. If the gate failed, a late
// ticket would read an earlier step's response off the wire and produce
// garbage labels — the correctness check below is the ordering check.
func TestSpeculativeCollectOrdering(t *testing.T) {
	sp, rp, cleanup := pools(t, PoolConfig{Capacity: 256}, 1200)
	defer cleanup()
	rng := rand.New(rand.NewSource(1201))
	sizes := []int{9, 17, 5}
	steps := make([][]bool, len(sizes))
	stepPairs := make([][][2]ot.Msg, len(sizes))
	for i, n := range sizes {
		steps[i] = randChoices(rng, n)
		stepPairs[i] = randPairs(rng, n)
	}
	done := specSend(sp, stepPairs)
	prs, err := rp.IssueAll(steps)
	if err != nil {
		t.Fatalf("IssueAll: %v", err)
	}
	outs := make([][]ot.Msg, len(prs))
	errs := make([]error, len(prs))
	var wg sync.WaitGroup
	// Launch the LAST tickets first; they must park in the ticket gate.
	for i := len(prs) - 1; i >= 1; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = prs[i].Collect()
		}(i)
		time.Sleep(10 * time.Millisecond)
	}
	outs[0], errs[0] = prs[0].Collect()
	wg.Wait()
	for i := range prs {
		if errs[i] != nil {
			t.Fatalf("Collect %d: %v", i, errs[i])
		}
		checkUnmasked(t, outs[i], stepPairs[i], steps[i])
	}
	if err := <-done; err != nil {
		t.Fatalf("sender: %v", err)
	}
}

// TestSpeculativeRefillBarrier pins the drain barrier: an IssueAll that
// needs a refill while responses from an earlier flight are still
// uncollected must wait for those collects (the refill's Y frame queues
// behind them on the shared stream), then refill once, upfront, for its
// whole demand.
func TestSpeculativeRefillBarrier(t *testing.T) {
	const cap0 = 64
	sp, rp, cleanup := pools(t, PoolConfig{Capacity: cap0, RefillLowWater: 1}, 1300)
	defer cleanup()
	rng := rand.New(rand.NewSource(1301))

	// Flight 1 consumes most of the pool and stays uncollected.
	steps1 := [][]bool{randChoices(rng, 30), randChoices(rng, 25)}
	pairs1 := [][][2]ot.Msg{randPairs(rng, 30), randPairs(rng, 25)}
	done1 := specSend(sp, pairs1)
	prs1, err := rp.IssueAll(steps1)
	if err != nil {
		t.Fatalf("flight 1 IssueAll: %v", err)
	}

	// Flight 2 needs more than the 9 remaining entries, so its IssueAll
	// must refill — and therefore block on the barrier until flight 1 is
	// collected.
	steps2 := [][]bool{randChoices(rng, 20)}
	pairs2 := [][][2]ot.Msg{randPairs(rng, 20)}
	issued := make(chan struct{})
	var prs2 []*PendingReceive
	var err2 error
	go func() {
		defer close(issued)
		prs2, err2 = rp.IssueAll(steps2)
	}()
	select {
	case <-issued:
		t.Fatal("IssueAll with uncollected responses and an exhausted pool returned without waiting for the drain barrier")
	case <-time.After(50 * time.Millisecond):
	}

	// Collecting flight 1 drains the barrier; flight 2's refill and issue
	// then proceed. The sender must keep serving: its loop sees flight
	// 2's refill announcement inside the Send for flight 2's step.
	for i, pr := range prs1 {
		got, err := pr.Collect()
		if err != nil {
			t.Fatalf("flight 1 Collect %d: %v", i, err)
		}
		checkUnmasked(t, got, pairs1[i], steps1[i])
	}
	if err := <-done1; err != nil {
		t.Fatalf("flight 1 sender: %v", err)
	}
	done2 := specSend(sp, pairs2)
	<-issued
	if err2 != nil {
		t.Fatalf("flight 2 IssueAll: %v", err2)
	}
	got, err := prs2[0].Collect()
	if err != nil {
		t.Fatalf("flight 2 Collect: %v", err)
	}
	checkUnmasked(t, got, pairs2[0], steps2[0])
	if err := <-done2; err != nil {
		t.Fatalf("flight 2 sender: %v", err)
	}
	// The refill was single and upfront: the pool is back at capacity
	// minus flight 2's consumption, and Seq covers every consumed OT.
	if want := int64(30 + 25 + 20); rp.Seq() != want {
		t.Fatalf("Seq = %d, want %d", rp.Seq(), want)
	}
	if rp.Available() != cap0-20 {
		t.Fatalf("Available = %d, want %d (one refill back to capacity, then flight 2's 20)", rp.Available(), cap0-20)
	}
}

// TestSpeculativeAbortUnblocks pins teardown: Abort must wake both a
// collector parked in the ticket gate and an issuer parked on the drain
// barrier, with ErrSequencerAborted.
func TestSpeculativeAbortUnblocks(t *testing.T) {
	sp, rp, cleanup := pools(t, PoolConfig{Capacity: 32, RefillLowWater: 1}, 1400)
	defer cleanup()
	rng := rand.New(rand.NewSource(1401))
	steps := [][]bool{randChoices(rng, 8), randChoices(rng, 8)}
	stepPairs := [][][2]ot.Msg{randPairs(rng, 8), randPairs(rng, 8)}
	done := specSend(sp, stepPairs)
	prs, err := rp.IssueAll(steps)
	if err != nil {
		t.Fatalf("IssueAll: %v", err)
	}
	// Ticket 1 parks behind uncollected ticket 0; a refill-needing issuer
	// parks on the barrier behind both.
	collectErr := make(chan error, 1)
	go func() {
		_, err := prs[1].Collect()
		collectErr <- err
	}()
	issueErr := make(chan error, 1)
	go func() {
		_, err := rp.IssueAll([][]bool{randChoices(rng, 30)})
		issueErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	rp.Abort()
	for name, ch := range map[string]chan error{"collector": collectErr, "issuer": issueErr} {
		select {
		case err := <-ch:
			if err != ErrSequencerAborted {
				t.Fatalf("%s unblocked with %v, want ErrSequencerAborted", name, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%s still blocked after Abort", name)
		}
	}
	// The sender is still parked in its second Send; tear the pipe down
	// and let it fail.
	cleanup()
	<-done
}
