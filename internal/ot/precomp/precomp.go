// Package precomp is the offline OT-precomputation subsystem: a random-OT
// pool that moves the IKNP extension's cryptography off the inference
// critical path (Beaver-style OT derandomization).
//
// Offline, the two parties bulk-generate random OTs over the existing
// extension — the sender banks n uniformly random label pairs (r0, r1),
// the receiver banks n random choice bits c and the corresponding r_c.
// Online, transferring a real pair (x0, x1) under a real choice bit b
// costs one message each way and XORs only:
//
//	receiver → sender:  d = b ⊕ c                (MsgOTDerandC, m/8 bytes)
//	sender → receiver:  y0 = x0 ⊕ r_d, y1 = x1 ⊕ r_{1⊕d}   (MsgOTDerandM)
//	receiver:           x_b = y_b ⊕ r_c
//
// The receiver side (the evaluator, whose choice bits are the model's
// weight bits) owns the pool policy: it announces the pool after the
// OT-extension base phase with a MsgOTRefill frame (count 0 disables
// pooling), performs the initial bulk fill there, and announces further
// refills in-band before an online batch whenever the pool runs low. The
// sender side is fully adaptive — it dispatches on the frame it sees
// (direct-IKNP U, a refill announcement, or derandomization corrections),
// so only one party needs configuring and the two ends can never disagree
// about the mode.
//
// Every pooled OT is consumed at most once: the pools are strict FIFOs
// over an absolute sequence number, entries are zeroed as they are taken,
// and exhaustion blocks on a refill exchange instead of ever reusing an
// entry. With Background enabled, the receiver precomputes the next
// refill's PRG expansion and matrix transpose on a helper goroutine while
// the evaluator is compute-bound, so a refill exchange at the next batch
// boundary only pays the wire round trip and the hash-decrypt step.
package precomp

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"deepsecure/internal/obs"
	"deepsecure/internal/ot"
	"deepsecure/internal/transport"
)

// PoolConfig sizes the receiver-driven random-OT pool.
type PoolConfig struct {
	// Capacity is the pool size targeted by the initial fill and by each
	// refill. 0 disables precomputation entirely (every online batch runs
	// direct IKNP, the pre-pool protocol).
	Capacity int
	// RefillLowWater triggers a refill once the unconsumed pool drops
	// below it. 0 defaults to Capacity/4. A refill also triggers
	// unconditionally when a batch needs more OTs than remain.
	RefillLowWater int
	// Background precomputes each refill's receiver-side crypto (PRG
	// expansion + transpose) on a helper goroutine while the evaluator is
	// busy, so the exchange at the next batch boundary is wire-bound.
	Background bool
}

// Enabled reports whether this configuration turns pooling on.
func (c PoolConfig) Enabled() bool { return c.Capacity > 0 }

// Effective returns the configuration with defaults resolved (the
// low-water mark an enabled pool actually refills at).
func (c PoolConfig) Effective() PoolConfig {
	c.RefillLowWater = c.lowWater()
	return c
}

func (c PoolConfig) lowWater() int {
	lw := c.Capacity / 4
	if c.RefillLowWater > 0 {
		lw = c.RefillLowWater
	}
	// A low-water mark at or above capacity would demand a refill from a
	// full pool (a zero-count exchange the sender rejects): clamp it so
	// "full" always satisfies the policy and misconfigured flags degrade
	// to refill-to-capacity after every batch instead of wedging the
	// session.
	if c.Enabled() && lw >= c.Capacity {
		lw = c.Capacity - 1
	}
	return lw
}

// maxRefill bounds a single announced refill so a corrupted or hostile
// count fails fast instead of forcing an absurd allocation.
const maxRefill = 1 << 26

// Stats counts a pool's offline and online work. The durations separate
// the protocol's two phases: OfflineTime covers bulk random-OT generation
// (fills and refills, crypto that can hide in setup and idle gaps) and
// OnlineTime the per-batch work left on the inference critical path
// (derandomization, or full IKNP when the pool is disabled).
type Stats struct {
	Generated int64 // random OTs produced into the pool
	Consumed  int64 // pooled OTs spent by derandomization
	Direct    int64 // OTs served by direct IKNP (pool disabled)
	Refills   int64 // fill exchanges, the initial fill included
	Batches   int64 // online exchanges (one per input batch, either mode)

	OfflineTime time.Duration
	OnlineTime  time.Duration
}

// readCount parses a MsgOTRefill payload.
func readCount(payload []byte) (int, error) {
	n, read := binary.Uvarint(payload)
	if read <= 0 || read != len(payload) {
		return 0, fmt.Errorf("precomp: malformed refill count frame (%d bytes)", len(payload))
	}
	if n > maxRefill {
		return 0, fmt.Errorf("precomp: refill count %d exceeds limit %d", n, maxRefill)
	}
	return int(n), nil
}

func countPayload(n int) []byte {
	buf := make([]byte, binary.MaxVarintLen64)
	return buf[:binary.PutUvarint(buf, uint64(n))]
}

func randBits(rng io.Reader, n int) ([]bool, error) {
	raw := make([]byte, (n+7)/8)
	if _, err := io.ReadFull(rng, raw); err != nil {
		return nil, fmt.Errorf("precomp: choice randomness: %w", err)
	}
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = raw[i/8]&(1<<uint(i%8)) != 0
	}
	return bits, nil
}

// ReceiverPool is the evaluator-side pool: it banks (c, r_c) tuples, owns
// the refill policy, and drives the wire protocol (the sender reacts to
// its announcements). One pool per session; consumers must be serialized
// (a pipelined session uses a Sequencer), but Stats is safe to read
// concurrently.
type ReceiverPool struct {
	conn transport.FrameConn
	ots  *ot.ExtReceiver
	rng  io.Reader
	cfg  PoolConfig

	// FIFO of unconsumed random OTs: entry i (absolute sequence seq+i)
	// holds choice bit bits[head+i] and message msgs[head+i]. head only
	// advances; consumed entries are zeroed so any accidental reuse
	// produces garbage labels (caught by output authentication) instead
	// of a silent two-time use.
	bits []bool
	msgs []ot.Msg
	head int
	seq  int64 // absolute sequence number of the first unconsumed entry

	// pending is an in-flight background precompute for the next refill;
	// nil when none. Resolved (and its U put on the wire) before any
	// other use of the ExtReceiver, preserving stream/hash ordering.
	pending chan pendingFill

	// st is guarded by stMu: consumers are serialized (by the session,
	// or by a Sequencer on pipelined sessions), but Stats may be read
	// concurrently — e.g. a session tearing down on one inference's
	// error snapshots counters while another inference's exchange is
	// still unwinding.
	stMu sync.Mutex
	st   Stats

	// Speculative out-of-inference-order consumption (IssueAll/Collect):
	// collectSeq orders response collection by issue ticket — the wire
	// carries derand responses in correction order, so collects must
	// read in that order even when inference walks interleave.
	// outstanding counts issued-but-uncollected batches; refills barrier
	// on it draining (a refill's Y frame queues behind every pending
	// response on the shared OT stream). Guarded by outMu; outCond wakes
	// the barrier. specAborted mirrors the sequencer's aborted flag for
	// barrier waiters.
	collectSeq  *Sequencer
	outMu       sync.Mutex
	outCond     *sync.Cond
	outstanding int
	specAborted bool
	nextTicket  int64
}

type pendingFill struct {
	n       int
	choices []bool
	pr      *ot.PreparedReceive
	err     error
}

// NewReceiverPool wraps a session's extension receiver. rng sources the
// pool's random choice bits (and must match the session's randomness
// policy for concurrency).
func NewReceiverPool(conn transport.FrameConn, ots *ot.ExtReceiver, rng io.Reader, cfg PoolConfig) *ReceiverPool {
	p := &ReceiverPool{conn: conn, ots: ots, rng: rng, cfg: cfg, collectSeq: NewSequencer(0)}
	p.outCond = sync.NewCond(&p.outMu)
	return p
}

// Stats returns a snapshot of the pool's counters. Safe to call
// concurrently with a consumer (teardown-path snapshots).
func (p *ReceiverPool) Stats() Stats {
	p.stMu.Lock()
	defer p.stMu.Unlock()
	return p.st
}

// stAdd folds a delta into the guarded counters.
func (p *ReceiverPool) stAdd(d Stats) {
	p.stMu.Lock()
	p.st.Generated += d.Generated
	p.st.Consumed += d.Consumed
	p.st.Direct += d.Direct
	p.st.Refills += d.Refills
	p.st.Batches += d.Batches
	p.st.OfflineTime += d.OfflineTime
	p.st.OnlineTime += d.OnlineTime
	p.stMu.Unlock()
}

// Seq returns the absolute sequence number of the next pooled OT to be
// consumed. It is strictly monotone: tests use it to prove that consumed
// ranges never overlap (single-use safety).
func (p *ReceiverPool) Seq() int64 { return p.seq }

// Available returns the number of unconsumed pooled OTs.
func (p *ReceiverPool) Available() int { return len(p.bits) - p.head }

// Announce opens the pool protocol after the OT base phase: it tells the
// sender whether pooling is on (count 0 = disabled) and, when on,
// performs the initial bulk fill — the session-setup offline phase. A
// capacity beyond the protocol's refill limit fails here, locally,
// before any frame reaches the peer.
func (p *ReceiverPool) Announce() error {
	if !p.cfg.Enabled() {
		if err := p.conn.Send(transport.MsgOTRefill, countPayload(0)); err != nil {
			return err
		}
		return p.conn.Flush()
	}
	if p.cfg.Capacity > maxRefill {
		return fmt.Errorf("precomp: pool capacity %d exceeds limit %d", p.cfg.Capacity, maxRefill)
	}
	return p.refill(p.cfg.Capacity)
}

// refill runs one announced fill exchange of n random OTs: announce,
// send U, receive Y, bank the results. Offline-phase work.
func (p *ReceiverPool) refill(n int) error {
	if n <= 0 {
		// Defense in depth: a zero-count refill would desynchronize the
		// sender (which rejects it); the policy clamps should make this
		// unreachable.
		return nil
	}
	if n > maxRefill {
		return fmt.Errorf("precomp: pool fill of %d OTs exceeds limit %d (lower Capacity)", n, maxRefill)
	}
	start := time.Now()
	choices, err := randBits(p.rng, n)
	if err != nil {
		return err
	}
	pr := p.ots.Prepare(choices)
	if err := p.finishRefill(n, choices, pr); err != nil {
		return err
	}
	elapsed := time.Since(start)
	p.stAdd(Stats{OfflineTime: elapsed})
	obs.ObservePhase(obs.PhaseOTRefill, elapsed)
	return nil
}

// finishRefill performs the wire half of a fill whose receiver crypto is
// already prepared.
func (p *ReceiverPool) finishRefill(n int, choices []bool, pr *ot.PreparedReceive) error {
	if err := p.conn.Send(transport.MsgOTRefill, countPayload(n)); err != nil {
		return err
	}
	if err := p.conn.Send(transport.MsgOTExtU, pr.U); err != nil {
		return err
	}
	y, err := p.conn.Recv(transport.MsgOTExtY)
	if err != nil {
		return err
	}
	msgs, err := p.ots.Finish(pr, y)
	if err != nil {
		return err
	}
	p.compact()
	p.bits = append(p.bits, choices...)
	p.msgs = append(p.msgs, msgs...)
	p.stAdd(Stats{Generated: int64(n), Refills: 1})
	obs.AddOTPooled(int64(n))
	obs.IncOTRefills()
	obs.SetOTPoolDepth(obs.OTReceiver, p.Available())
	return nil
}

// compact drops the consumed prefix so the backing arrays don't grow with
// session lifetime.
func (p *ReceiverPool) compact() {
	if p.head == 0 {
		return
	}
	p.bits = append(p.bits[:0], p.bits[p.head:]...)
	p.msgs = append(p.msgs[:0], p.msgs[p.head:]...)
	p.head = 0
}

// resolvePending completes an in-flight background precompute, putting
// its exchange on the wire now. Must run before any other ExtReceiver use
// so stream and hash ordering match the wire.
func (p *ReceiverPool) resolvePending() error {
	if p.pending == nil {
		return nil
	}
	start := time.Now()
	f := <-p.pending // blocks until the precompute goroutine is done
	p.pending = nil
	if f.err != nil {
		return f.err
	}
	err := p.finishRefill(f.n, f.choices, f.pr)
	elapsed := time.Since(start)
	p.stAdd(Stats{OfflineTime: elapsed})
	obs.ObservePhase(obs.PhaseOTRefill, elapsed)
	return err
}

// maybeStartBackground kicks off the next refill's precompute after a
// consume left the pool below low water.
func (p *ReceiverPool) maybeStartBackground() {
	if !p.cfg.Background || p.pending != nil || p.Available() >= p.cfg.lowWater() {
		return
	}
	n := p.cfg.Capacity - p.Available()
	if n <= 0 {
		return
	}
	start := time.Now()
	choices, err := randBits(p.rng, n)
	if err != nil {
		p.stAdd(Stats{OfflineTime: time.Since(start)})
		// Surface the randomness failure at the next exchange point.
		ch := make(chan pendingFill, 1)
		ch <- pendingFill{err: err}
		p.pending = ch
		return
	}
	ch := make(chan pendingFill, 1)
	p.pending = ch
	go func() {
		// Only this goroutine touches the ExtReceiver until the session
		// goroutine blocks on the channel in resolvePending. A panic in
		// the precompute must still deliver a fill on the channel —
		// otherwise resolvePending blocks forever on a goroutine that no
		// longer exists — so it is contained into the fill's error.
		defer func() {
			if v := recover(); v != nil {
				ch <- pendingFill{err: obs.Panicked("precomp: background refill", v)}
			}
		}()
		pr := p.ots.Prepare(choices)
		ch <- pendingFill{n: n, choices: choices, pr: pr}
	}()
	p.stAdd(Stats{OfflineTime: time.Since(start)})
}

// Receive obliviously obtains the messages selected by choices, like
// ot.ExtReceiver.Receive, but from the pool: pending refills resolve
// first (blocking until the pool covers the batch — never reusing an
// entry), then one derandomization exchange moves the labels.
func (p *ReceiverPool) Receive(choices []bool) ([]ot.Msg, error) {
	m := len(choices)
	if m == 0 {
		return nil, nil
	}
	if !p.cfg.Enabled() {
		start := time.Now()
		msgs, err := p.ots.Receive(choices)
		p.stAdd(Stats{OnlineTime: time.Since(start), Direct: int64(m), Batches: 1})
		return msgs, err
	}
	// A background precompute already advanced the PRG streams: its U
	// must be the next U on the wire, so it resolves before any further
	// fill.
	if err := p.resolvePending(); err != nil {
		return nil, err
	}
	if avail := p.Available(); avail < m || avail < p.cfg.lowWater() {
		n := p.cfg.Capacity - avail
		if n < m-avail {
			n = m - avail
		}
		if err := p.refill(n); err != nil {
			return nil, err
		}
	}

	// Online derandomization: one message each way, XORs only.
	start := time.Now()
	d := make([]byte, (m+7)/8)
	for j, b := range choices {
		if b != p.bits[p.head+j] {
			d[j/8] |= 1 << uint(j%8)
		}
	}
	if err := p.conn.Send(transport.MsgOTDerandC, d); err != nil {
		return nil, err
	}
	y, err := p.conn.Recv(transport.MsgOTDerandM)
	if err != nil {
		return nil, err
	}
	if len(y) != m*2*ot.MsgLen {
		return nil, fmt.Errorf("precomp: derand payload is %d bytes, want %d", len(y), m*2*ot.MsgLen)
	}
	out := make([]ot.Msg, m)
	for j, b := range choices {
		off := j * 2 * ot.MsgLen
		if b {
			off += ot.MsgLen
		}
		r := &p.msgs[p.head+j]
		for i := 0; i < ot.MsgLen; i++ {
			out[j][i] = y[off+i] ^ r[i]
		}
		// Single-use: zero the entry as it is consumed.
		*r = ot.Msg{}
		p.bits[p.head+j] = false
	}
	p.head += m
	p.seq += int64(m)
	elapsed := time.Since(start)
	p.stAdd(Stats{Consumed: int64(m), Batches: 1, OnlineTime: elapsed})
	obs.ObservePhase(obs.PhaseOTDerand, elapsed)
	obs.AddOTConsumed(int64(m))
	obs.SetOTPoolDepth(obs.OTReceiver, p.Available())
	p.maybeStartBackground()
	return out, nil
}

// Pooled reports whether this pool's configuration enables pooling —
// the precondition for speculative issue (IssueAll needs banked entries
// to derandomize against; direct IKNP is inherently request/response).
func (p *ReceiverPool) Pooled() bool { return p.cfg.Enabled() }

// Abort unblocks every speculative waiter — collects gated on the ticket
// order and issuers gated on the outstanding-drain barrier — with a
// teardown error. Call alongside the session Sequencer's Abort.
func (p *ReceiverPool) Abort() {
	p.collectSeq.Abort()
	p.outMu.Lock()
	p.specAborted = true
	p.outCond.Broadcast()
	p.outMu.Unlock()
}

// PendingReceive is one issued-but-uncollected speculative batch: the
// corrections are on the wire, the consumed pool entries are copied out
// (and the pool's own copies zeroed), and Collect unmasks the sender's
// response when the walk reaches the step.
type PendingReceive struct {
	p       *ReceiverPool
	ticket  int64
	choices []bool
	bits    []bool
	msgs    []ot.Msg
}

// IssueAll speculatively issues the derandomization corrections for ALL
// of an inference's input-step batches in one flight: each step's
// corrections are computed against consecutive pool entries and sent
// back-to-back (one Flush at the end), and the caller gets one
// PendingReceive per step to Collect in walk order. The point: the
// caller can release its pool-order turn the moment IssueAll returns —
// the pool's FIFO state is fully advanced — so the next inference's
// corrections overlap this one's evaluation instead of waiting for its
// last Collect.
//
// Callers must still be serialized against each other (the session
// Sequencer); Collects order themselves by ticket. Requires an enabled
// pool.
func (p *ReceiverPool) IssueAll(steps [][]bool) ([]*PendingReceive, error) {
	if !p.cfg.Enabled() {
		return nil, fmt.Errorf("precomp: speculative issue requires an enabled pool")
	}
	total := 0
	for _, c := range steps {
		total += len(c)
	}
	// A refill (or a pending background fill's resolution) reads a
	// MsgOTExtY off the shared OT stream — which carries the responses to
	// every outstanding correction first. Barrier until earlier
	// inferences' collects drain those responses before touching the
	// wire. Deadlock-free: collects need only the ticket order, not the
	// pool turn this caller holds.
	if p.pending != nil || p.Available() < total || p.Available() < p.cfg.lowWater() {
		p.outMu.Lock()
		for p.outstanding > 0 && !p.specAborted {
			p.outCond.Wait()
		}
		aborted := p.specAborted
		p.outMu.Unlock()
		if aborted {
			return nil, ErrSequencerAborted
		}
		if err := p.resolvePending(); err != nil {
			return nil, err
		}
		if avail := p.Available(); avail < total || avail < p.cfg.lowWater() {
			// One upfront refill covers the whole inference: refilling
			// mid-issue would deadlock on our own outstanding responses.
			n := p.cfg.Capacity - avail
			if n < total-avail {
				n = total - avail
			}
			if err := p.refill(n); err != nil {
				return nil, err
			}
		}
	}

	start := time.Now()
	prs := make([]*PendingReceive, len(steps))
	for si, choices := range steps {
		m := len(choices)
		pr := &PendingReceive{p: p, choices: choices}
		prs[si] = pr
		p.outMu.Lock()
		pr.ticket = p.nextTicket
		p.nextTicket++
		p.outstanding++
		p.outMu.Unlock()
		if m == 0 {
			continue
		}
		// Copy the consumed entries out for Collect and zero the pool's
		// own copies now: the FIFO advances here, single-use holds even
		// if the Collect never runs.
		pr.bits = make([]bool, m)
		pr.msgs = make([]ot.Msg, m)
		copy(pr.bits, p.bits[p.head:p.head+m])
		copy(pr.msgs, p.msgs[p.head:p.head+m])
		d := make([]byte, (m+7)/8)
		for j, b := range choices {
			if b != pr.bits[j] {
				d[j/8] |= 1 << uint(j%8)
			}
			p.msgs[p.head+j] = ot.Msg{}
			p.bits[p.head+j] = false
		}
		p.head += m
		p.seq += int64(m)
		if err := p.conn.Send(transport.MsgOTDerandC, d); err != nil {
			return nil, err
		}
	}
	// One flush for the whole flight: the sender answers each correction
	// in order, so responses stream back while the walk evaluates.
	if err := p.conn.Flush(); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	p.stAdd(Stats{Consumed: int64(total), Batches: int64(len(steps)), OnlineTime: elapsed})
	obs.ObservePhase(obs.PhaseOTDerand, elapsed)
	obs.AddOTConsumed(int64(total))
	obs.SetOTPoolDepth(obs.OTReceiver, p.Available())
	p.maybeStartBackground()
	return prs, nil
}

// Collect receives and unmasks the sender's response for one issued
// batch. Collects self-serialize into issue order (the wire order of the
// responses); a failed receive aborts the pool's speculative state
// instead of releasing the ticket — the stream is desynchronized and no
// later collect can legitimately proceed.
func (pr *PendingReceive) Collect() ([]ot.Msg, error) {
	p := pr.p
	if err := p.collectSeq.Acquire(pr.ticket); err != nil {
		return nil, err
	}
	m := len(pr.choices)
	if m == 0 {
		p.collectSeq.Release(pr.ticket)
		p.outMu.Lock()
		p.outstanding--
		p.outCond.Broadcast()
		p.outMu.Unlock()
		return nil, nil
	}
	start := time.Now()
	y, err := p.conn.Recv(transport.MsgOTDerandM)
	if err != nil {
		p.Abort()
		return nil, err
	}
	if len(y) != m*2*ot.MsgLen {
		p.Abort()
		return nil, fmt.Errorf("precomp: derand payload is %d bytes, want %d", len(y), m*2*ot.MsgLen)
	}
	out := make([]ot.Msg, m)
	for j, b := range pr.choices {
		off := j * 2 * ot.MsgLen
		if b {
			off += ot.MsgLen
		}
		r := &pr.msgs[j]
		for i := 0; i < ot.MsgLen; i++ {
			out[j][i] = y[off+i] ^ r[i]
		}
		// Single-use: the pending copies die with the collect.
		*r = ot.Msg{}
		pr.bits[j] = false
	}
	pr.msgs, pr.bits = nil, nil
	p.collectSeq.Release(pr.ticket)
	p.outMu.Lock()
	p.outstanding--
	p.outCond.Broadcast()
	p.outMu.Unlock()
	elapsed := time.Since(start)
	p.stAdd(Stats{OnlineTime: elapsed})
	obs.ObservePhase(obs.PhaseSpecCollect, elapsed)
	return out, nil
}

// SenderPool is the garbler-side pool: it banks random label pairs and
// follows the receiver's protocol — direct IKNP, a refill, or a
// derandomized batch, whichever frame arrives. Not safe for concurrent
// use; one pool per session.
type SenderPool struct {
	conn transport.FrameConn
	ots  *ot.ExtSender
	rng  io.Reader

	pairs [][2]ot.Msg
	head  int
	seq   int64

	pooled bool // the receiver announced an enabled pool
	st     Stats
}

// NewSenderPool wraps a session's extension sender. rng sources the
// pool's random label pairs.
func NewSenderPool(conn transport.FrameConn, ots *ot.ExtSender, rng io.Reader) *SenderPool {
	return &SenderPool{conn: conn, ots: ots, rng: rng}
}

// Stats returns a snapshot of the pool's counters.
func (p *SenderPool) Stats() Stats { return p.st }

// Seq returns the absolute sequence number of the next pooled pair to be
// consumed (single-use safety instrumentation, like ReceiverPool.Seq).
func (p *SenderPool) Seq() int64 { return p.seq }

// Available returns the number of unconsumed pooled pairs.
func (p *SenderPool) Available() int { return len(p.pairs) - p.head }

// Pooled reports whether the receiver announced an enabled pool.
func (p *SenderPool) Pooled() bool { return p.pooled }

// HandleAnnounce consumes the receiver's pool announcement after the OT
// base phase and, when pooling is on, participates in the initial fill.
func (p *SenderPool) HandleAnnounce() error {
	payload, err := p.conn.Recv(transport.MsgOTRefill)
	if err != nil {
		return err
	}
	n, err := readCount(payload)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	p.pooled = true
	return p.fill(n)
}

// fill banks n fresh random pairs through one announced refill exchange.
func (p *SenderPool) fill(n int) error {
	start := time.Now()
	// One bulk read for all 2n labels: per-label ReadFull calls would
	// cost 2n separate rng round trips (getrandom syscalls under
	// crypto/rand) at every session setup.
	raw := make([]byte, n*2*ot.MsgLen)
	if _, err := io.ReadFull(p.rng, raw); err != nil {
		return fmt.Errorf("precomp: pair randomness: %w", err)
	}
	fresh := make([][2]ot.Msg, n)
	for i := range fresh {
		copy(fresh[i][0][:], raw[i*2*ot.MsgLen:])
		copy(fresh[i][1][:], raw[i*2*ot.MsgLen+ot.MsgLen:])
	}
	u, err := p.conn.Recv(transport.MsgOTExtU)
	if err != nil {
		return err
	}
	if err := p.ots.SendWithU(fresh, u); err != nil {
		return err
	}
	if p.head > 0 {
		p.pairs = append(p.pairs[:0], p.pairs[p.head:]...)
		p.head = 0
	}
	p.pairs = append(p.pairs, fresh...)
	p.st.Generated += int64(n)
	p.st.Refills++
	elapsed := time.Since(start)
	p.st.OfflineTime += elapsed
	obs.ObservePhase(obs.PhaseOTRefill, elapsed)
	obs.AddOTPooled(int64(n))
	obs.IncOTRefills()
	obs.SetOTPoolDepth(obs.OTSender, p.Available())
	return nil
}

// Send obliviously transfers pairs[j][b_j] for the receiver's hidden
// choice bits, like ot.ExtSender.Send, but following whatever protocol
// the receiver drives: refill announcements are serviced until the
// batch's own frame (direct-IKNP U or derandomization corrections)
// arrives.
func (p *SenderPool) Send(pairs [][2]ot.Msg) error {
	m := len(pairs)
	if m == 0 {
		return nil
	}
	for {
		typ, payload, err := p.conn.RecvAny(
			transport.MsgOTExtU, transport.MsgOTDerandC, transport.MsgOTRefill)
		if err != nil {
			return err
		}
		switch typ {
		case transport.MsgOTRefill:
			n, err := readCount(payload)
			if err != nil {
				return err
			}
			if n == 0 {
				return fmt.Errorf("precomp: zero-count refill mid-session")
			}
			p.pooled = true
			if err := p.fill(n); err != nil {
				return err
			}
		case transport.MsgOTExtU:
			start := time.Now()
			err := p.ots.SendWithU(pairs, payload)
			p.st.OnlineTime += time.Since(start)
			p.st.Direct += int64(m)
			p.st.Batches++
			return err
		case transport.MsgOTDerandC:
			return p.derand(pairs, payload)
		}
	}
}

// derand answers one online batch: the receiver's corrections d select
// which pooled pair element masks which real label.
func (p *SenderPool) derand(pairs [][2]ot.Msg, d []byte) error {
	start := time.Now()
	m := len(pairs)
	if len(d) != (m+7)/8 {
		return fmt.Errorf("precomp: correction payload is %d bytes, want %d for %d OTs", len(d), (m+7)/8, m)
	}
	if p.Available() < m {
		return fmt.Errorf("precomp: receiver derandomizes %d OTs but only %d are pooled", m, p.Available())
	}
	out := make([]byte, 0, m*2*ot.MsgLen)
	for j := range pairs {
		dj := 0
		if d[j/8]&(1<<uint(j%8)) != 0 {
			dj = 1
		}
		r := &p.pairs[p.head+j]
		var y0, y1 ot.Msg
		for i := 0; i < ot.MsgLen; i++ {
			y0[i] = pairs[j][0][i] ^ r[dj][i]
			y1[i] = pairs[j][1][i] ^ r[1-dj][i]
		}
		out = append(out, y0[:]...)
		out = append(out, y1[:]...)
		// Single-use: zero the pair as it is consumed.
		*r = [2]ot.Msg{}
	}
	p.head += m
	p.seq += int64(m)
	p.st.Consumed += int64(m)
	p.st.Batches++
	if err := p.conn.Send(transport.MsgOTDerandM, out); err != nil {
		return err
	}
	err := p.conn.Flush()
	elapsed := time.Since(start)
	p.st.OnlineTime += elapsed
	obs.ObservePhase(obs.PhaseOTDerand, elapsed)
	obs.SetOTPoolDepth(obs.OTSender, p.Available())
	return err
}
