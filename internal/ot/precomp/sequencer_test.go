package precomp

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSequencerAdmitsInOrder launches consumers in scrambled start order
// and asserts the sequencer serializes their critical sections into
// strictly increasing turn order.
func TestSequencerAdmitsInOrder(t *testing.T) {
	const n = 8
	s := NewSequencer(1)
	var mu sync.Mutex
	var order []int64
	var wg sync.WaitGroup
	// Launch highest turns first so the scheduler's natural order fights
	// the sequencer's.
	for turn := int64(n); turn >= 1; turn-- {
		wg.Add(1)
		go func(turn int64) {
			defer wg.Done()
			if err := s.Acquire(turn); err != nil {
				t.Errorf("turn %d: %v", turn, err)
				return
			}
			mu.Lock()
			order = append(order, turn)
			mu.Unlock()
			s.Release(turn)
		}(turn)
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	if len(order) != n {
		t.Fatalf("%d turns ran, want %d", len(order), n)
	}
	for i, turn := range order {
		if turn != int64(i+1) {
			t.Fatalf("admission order %v is not sequential", order)
		}
	}
}

// TestSequencerAbortUnblocksWaiters pins the teardown path: waiters whose
// turn will never come must fail fast with ErrSequencerAborted instead of
// hanging the session forever.
func TestSequencerAbortUnblocksWaiters(t *testing.T) {
	s := NewSequencer(1)
	if err := s.Acquire(1); err != nil {
		t.Fatal(err)
	}
	// Turn 1 dies without releasing (a failed inference context); turn 2
	// is parked.
	errCh := make(chan error, 1)
	go func() { errCh <- s.Acquire(2) }()
	select {
	case err := <-errCh:
		t.Fatalf("turn 2 admitted out of order: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	s.Abort()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrSequencerAborted) {
			t.Fatalf("aborted waiter got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Abort left a waiter blocked")
	}
	if err := s.Acquire(3); !errors.Is(err, ErrSequencerAborted) {
		t.Fatalf("post-abort Acquire got %v", err)
	}
}
