package precomp

import (
	"math/rand"
	"sync"
	"testing"

	"deepsecure/internal/ot"
	"deepsecure/internal/transport"
)

// pools builds a connected sender/receiver pool pair over an in-memory
// pipe, running the base phase and the announcement handshake.
func pools(t *testing.T, cfg PoolConfig, seed int64) (*SenderPool, *ReceiverPool, func()) {
	t.Helper()
	sConn, rConn, closer := transport.Pipe()

	var sp *SenderPool
	var senderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ots, err := ot.NewExtSender(sConn, rand.New(rand.NewSource(seed)))
		if err != nil {
			senderErr = err
			return
		}
		sp = NewSenderPool(sConn, ots, rand.New(rand.NewSource(seed+1)))
		senderErr = sp.HandleAnnounce()
	}()
	otr, err := ot.NewExtReceiver(rConn, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		t.Fatal(err)
	}
	rp := NewReceiverPool(rConn, otr, rand.New(rand.NewSource(seed+3)), cfg)
	if err := rp.Announce(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if senderErr != nil {
		t.Fatal(senderErr)
	}
	return sp, rp, func() { closer.Close() }
}

// transfer runs one oblivious batch through the pools: the sender's Send
// on a goroutine (it reacts to the receiver's frames), the receiver's
// Receive inline.
func transfer(t *testing.T, sp *SenderPool, rp *ReceiverPool, pairs [][2]ot.Msg, choices []bool) []ot.Msg {
	t.Helper()
	var wg sync.WaitGroup
	var sendErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		sendErr = sp.Send(pairs)
	}()
	got, err := rp.Receive(choices)
	wg.Wait()
	if sendErr != nil {
		t.Fatalf("sender: %v", sendErr)
	}
	if err != nil {
		t.Fatalf("receiver: %v", err)
	}
	return got
}

func randPairs(rng *rand.Rand, n int) [][2]ot.Msg {
	pairs := make([][2]ot.Msg, n)
	for i := range pairs {
		rng.Read(pairs[i][0][:])
		rng.Read(pairs[i][1][:])
	}
	return pairs
}

func randChoices(rng *rand.Rand, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Intn(2) == 1
	}
	return out
}

// directIKNP runs the same batch over raw ExtSender/ExtReceiver and
// returns the receiver's output — the reference the derandomized path
// must match bit for bit.
func directIKNP(t *testing.T, pairs [][2]ot.Msg, choices []bool, seed int64) []ot.Msg {
	t.Helper()
	sConn, rConn, closer := transport.Pipe()
	defer closer.Close()
	var wg sync.WaitGroup
	var sendErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		ots, err := ot.NewExtSender(sConn, rand.New(rand.NewSource(seed)))
		if err != nil {
			sendErr = err
			return
		}
		sendErr = ots.Send(pairs)
	}()
	otr, err := ot.NewExtReceiver(rConn, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := otr.Receive(choices)
	wg.Wait()
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestDerandConformance is the tentpole property test: for random choice
// vectors and label pairs, the pooled+derandomized transfer must equal
// the direct IKNP transfer bit for bit (both must yield pairs[j][b_j]),
// across batch sizes that cross the 8-bit packing boundary.
func TestDerandConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sp, rp, done := pools(t, PoolConfig{Capacity: 300, RefillLowWater: 40}, 50)
	defer done()
	for trial, m := range []int{1, 7, 8, 9, 63, 64, 65, 100, 200} {
		pairs := randPairs(rng, m)
		choices := randChoices(rng, m)
		pooled := transfer(t, sp, rp, pairs, choices)
		direct := directIKNP(t, pairs, choices, int64(1000+trial))
		if len(pooled) != m || len(direct) != m {
			t.Fatalf("m=%d: got %d pooled / %d direct transfers", m, len(pooled), len(direct))
		}
		for j, b := range choices {
			want := pairs[j][0]
			if b {
				want = pairs[j][1]
			}
			if pooled[j] != want {
				t.Fatalf("m=%d OT %d: derandomized output wrong for choice %v", m, j, b)
			}
			if pooled[j] != direct[j] {
				t.Fatalf("m=%d OT %d: derandomized output differs from direct IKNP", m, j)
			}
		}
	}
	if st := rp.Stats(); st.Direct != 0 {
		t.Errorf("pooled session used %d direct IKNP OTs", st.Direct)
	}
}

// TestSingleUseSafety proves no pooled OT instance is ever consumed
// twice: consumed sequence ranges are strictly increasing and disjoint
// on both sides, exhaustion triggers a refill (never reuse), and the
// generated/consumed accounting stays consistent throughout.
func TestSingleUseSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Tiny pool so nearly every batch forces a refill exchange.
	sp, rp, done := pools(t, PoolConfig{Capacity: 32, RefillLowWater: 8}, 60)
	defer done()

	var consumed int64
	nextSeq := int64(0)
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(70) // frequently exceeds capacity remnants
		pairs := randPairs(rng, m)
		choices := randChoices(rng, m)

		sBefore, rBefore := sp.Seq(), rp.Seq()
		if sBefore != nextSeq || rBefore != nextSeq {
			t.Fatalf("trial %d: seq diverged (sender %d, receiver %d, want %d)", trial, sBefore, rBefore, nextSeq)
		}
		got := transfer(t, sp, rp, pairs, choices)
		for j, b := range choices {
			want := pairs[j][0]
			if b {
				want = pairs[j][1]
			}
			if got[j] != want {
				t.Fatalf("trial %d OT %d: wrong transfer", trial, j)
			}
		}
		// The consumed range is exactly [nextSeq, nextSeq+m): no entry
		// before nextSeq can be touched again (seq is monotone), so
		// ranges across trials are pairwise disjoint.
		if sp.Seq() != nextSeq+int64(m) || rp.Seq() != nextSeq+int64(m) {
			t.Fatalf("trial %d: consumed range not exactly m=%d wide (sender %d, receiver %d)",
				trial, m, sp.Seq(), rp.Seq())
		}
		nextSeq += int64(m)
		consumed += int64(m)

		st := rp.Stats()
		if st.Consumed != consumed {
			t.Fatalf("trial %d: receiver consumed %d, want %d", trial, st.Consumed, consumed)
		}
		if st.Generated < st.Consumed {
			t.Fatalf("trial %d: consumed %d exceeds generated %d — an entry was reused",
				trial, st.Consumed, st.Generated)
		}
		if got, want := int64(rp.Available()), st.Generated-st.Consumed; got != want {
			t.Fatalf("trial %d: %d available, want generated-consumed=%d", trial, got, want)
		}
	}
	if st := rp.Stats(); st.Refills < 5 {
		t.Errorf("tiny pool under sustained traffic performed only %d refills", st.Refills)
	}
	if ss := sp.Stats(); ss.Generated != rp.Stats().Generated || ss.Consumed != rp.Stats().Consumed {
		t.Errorf("sender accounting (%d/%d) diverges from receiver (%d/%d)",
			ss.Generated, ss.Consumed, rp.Stats().Generated, rp.Stats().Consumed)
	}
}

// TestBackgroundRefill exercises the helper-goroutine precompute path
// (run under -race in CI): refills triggered at low water must resolve
// before the pool runs dry and keep transfers correct.
func TestBackgroundRefill(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	sp, rp, done := pools(t, PoolConfig{Capacity: 64, RefillLowWater: 48, Background: true}, 70)
	defer done()
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.Intn(40)
		pairs := randPairs(rng, m)
		choices := randChoices(rng, m)
		got := transfer(t, sp, rp, pairs, choices)
		for j, b := range choices {
			want := pairs[j][0]
			if b {
				want = pairs[j][1]
			}
			if got[j] != want {
				t.Fatalf("trial %d OT %d: wrong transfer", trial, j)
			}
		}
	}
	st := rp.Stats()
	if st.Refills < 2 {
		t.Errorf("background mode performed only %d fills", st.Refills)
	}
	if st.Generated < st.Consumed {
		t.Errorf("consumed %d exceeds generated %d", st.Consumed, st.Generated)
	}
}

// TestEmptyBatch pins that a zero-length batch touches neither the wire
// nor the pool on either side.
func TestEmptyBatch(t *testing.T) {
	sp, rp, done := pools(t, PoolConfig{Capacity: 16}, 80)
	defer done()
	sent0 := rp.conn.(*transport.Conn).BytesSent.Load()
	got, err := rp.Receive(nil)
	if err != nil || got != nil {
		t.Fatalf("empty Receive = (%v, %v)", got, err)
	}
	if err := sp.Send(nil); err != nil {
		t.Fatalf("empty Send: %v", err)
	}
	if rp.conn.(*transport.Conn).BytesSent.Load() != sent0 {
		t.Error("empty batch put frames on the wire")
	}
	if rp.Stats().Consumed != 0 || sp.Stats().Consumed != 0 {
		t.Error("empty batch consumed pooled OTs")
	}
}

// TestDisabledPoolPassthrough pins the compatibility mode: a zero config
// announces count 0 and every batch runs direct IKNP, counted as such.
func TestDisabledPoolPassthrough(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	sp, rp, done := pools(t, PoolConfig{}, 90)
	defer done()
	if sp.Pooled() {
		t.Fatal("disabled pool announced as enabled")
	}
	m := 33
	pairs := randPairs(rng, m)
	choices := randChoices(rng, m)
	got := transfer(t, sp, rp, pairs, choices)
	for j, b := range choices {
		want := pairs[j][0]
		if b {
			want = pairs[j][1]
		}
		if got[j] != want {
			t.Fatalf("OT %d: wrong transfer", j)
		}
	}
	if st := rp.Stats(); st.Direct != int64(m) || st.Generated != 0 || st.Consumed != 0 {
		t.Errorf("disabled-pool stats: %+v", st)
	}
}

// TestLowWaterAboveCapacity pins the misconfiguration clamp: a low-water
// mark at or above capacity must degrade to refill-after-every-batch,
// not wedge the session in a zero-count refill exchange.
func TestLowWaterAboveCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	sp, rp, done := pools(t, PoolConfig{Capacity: 16, RefillLowWater: 64}, 97)
	defer done()
	for trial := 0; trial < 4; trial++ {
		m := 1 + rng.Intn(12)
		pairs := randPairs(rng, m)
		choices := randChoices(rng, m)
		got := transfer(t, sp, rp, pairs, choices)
		for j, b := range choices {
			want := pairs[j][0]
			if b {
				want = pairs[j][1]
			}
			if got[j] != want {
				t.Fatalf("trial %d OT %d: wrong transfer", trial, j)
			}
		}
	}
	if st := rp.Stats(); st.Generated < st.Consumed {
		t.Errorf("consumed %d exceeds generated %d", st.Consumed, st.Generated)
	}
}

// TestOversizedCapacityFailsLocally pins that a capacity beyond the
// refill limit errors on the receiver before any frame hits the wire.
func TestOversizedCapacityFailsLocally(t *testing.T) {
	sConn, rConn, closer := transport.Pipe()
	defer closer.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Run only the base phase; the announcement must never arrive.
		ot.NewExtSender(sConn, rand.New(rand.NewSource(98))) //nolint:errcheck
	}()
	otr, err := ot.NewExtReceiver(rConn, rand.New(rand.NewSource(99)))
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	rp := NewReceiverPool(rConn, otr, rand.New(rand.NewSource(100)), PoolConfig{Capacity: maxRefill + 1})
	sent0 := rConn.BytesSent.Load()
	if err := rp.Announce(); err == nil {
		t.Fatal("oversized capacity must fail Announce")
	}
	if rConn.BytesSent.Load() != sent0 {
		t.Error("oversized capacity leaked frames onto the wire")
	}
}

// TestAnnouncedFillAtSetup pins that an enabled pool is bulk-filled
// during the announcement handshake — before any online batch.
func TestAnnouncedFillAtSetup(t *testing.T) {
	sp, rp, done := pools(t, PoolConfig{Capacity: 128}, 95)
	defer done()
	if !sp.Pooled() {
		t.Fatal("enabled pool not announced")
	}
	if rp.Available() != 128 || sp.Available() != 128 {
		t.Fatalf("setup fill left %d/%d available, want 128/128", rp.Available(), sp.Available())
	}
	if st := rp.Stats(); st.Generated != 128 || st.Refills != 1 || st.OfflineTime <= 0 {
		t.Errorf("setup-fill stats: %+v", st)
	}
	if rp.Stats().OnlineTime != 0 {
		t.Error("setup fill charged online time")
	}
}
