package precomp

import (
	"errors"
	"sync"
)

// The pools in this package are strict FIFOs over a single stateful IKNP
// extension: every consume must happen in the one total order both
// parties agree on. Serial sessions get that order for free. Pipelined
// sessions overlap inferences, so the evaluator runs several consumers
// (one per in-flight inference) against one pool — the Sequencer is the
// ordered-admission gate that serializes them into the deterministic
// order the garbler derives from inference ids: all of inference k's
// batches strictly before any of inference k+1's.

// ErrSequencerAborted is returned by Acquire after Abort: the session is
// tearing down and the waiter's turn will never come.
var ErrSequencerAborted = errors.New("precomp: pool sequencer aborted")

// Sequencer admits consumers one at a time in strictly increasing turn
// order. A consumer Acquires its turn (blocking until every earlier turn
// has Released), performs all of its pool exchanges, and Releases to
// admit the next. Acquire/Release pair per turn; a consumer with no pool
// work must still pass its turn through (Acquire then Release
// immediately) or every later consumer deadlocks. Safe for concurrent
// use by design.
type Sequencer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	turn    int64
	aborted bool
}

// NewSequencer returns a sequencer whose first admitted turn is first.
func NewSequencer(first int64) *Sequencer {
	s := &Sequencer{turn: first}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Acquire blocks until turn is admitted (all earlier turns Released), or
// returns ErrSequencerAborted if the sequencer is shut down first.
func (s *Sequencer) Acquire(turn int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.turn != turn && !s.aborted {
		s.cond.Wait()
	}
	if s.aborted {
		return ErrSequencerAborted
	}
	return nil
}

// Release passes the baton from turn to turn+1. Calling Release for a
// turn that is not current is a no-op (it can only happen on teardown
// paths after Abort).
func (s *Sequencer) Release(turn int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.turn == turn {
		s.turn++
		s.cond.Broadcast()
	}
}

// Abort wakes every waiter with ErrSequencerAborted and makes all future
// Acquires fail — session teardown, where pending turns will never run.
func (s *Sequencer) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aborted = true
	s.cond.Broadcast()
}
