//go:build race

package costmodel

// raceEnabled relaxes wall-clock plausibility assertions: race-detector
// instrumentation slows per-gate costs by an order of magnitude.
const raceEnabled = true
