package costmodel

import (
	"math"
	"strings"
	"testing"

	"deepsecure/internal/circuit"
)

// paperB1Stats are Table 4's benchmark-1 gate counts.
var paperB1Stats = circuit.Stats{XOR: 4.31e7, AND: 2.47e7}

func TestPaperCoefficientsReproduceTable4Row1(t *testing.T) {
	// Feeding the paper's own gate counts through the model must land on
	// the paper's own Table 4 numbers — this validates the model shape.
	est := FromStats(paperB1Stats, Paper())
	if math.Abs(est.CommMB-791) > 5 {
		t.Errorf("comm = %.1f MB, paper says 791 MB", est.CommMB)
	}
	if math.Abs(est.CompS-1.98) > 0.1 {
		t.Errorf("comp = %.2f s, paper says 1.98 s", est.CompS)
	}
	if math.Abs(est.ExecS-9.67) > 0.5 {
		t.Errorf("exec = %.2f s, paper says 9.67 s", est.ExecS)
	}
}

func TestPaperThroughputConstants(t *testing.T) {
	// §4.4: 2.56M non-XOR and 5.11M XOR gates per second.
	xs, ns := Throughput(Paper())
	if math.Abs(xs-5.48e7)/5.48e7 > 0.01 {
		// 3.4GHz/62 cycles = 54.8M/s is garble+eval combined; the paper's
		// 5.11M/s is the end-to-end protocol rate including transfer —
		// just assert ordering and magnitude here.
		t.Logf("xor throughput %.3g/s", xs)
	}
	if ns >= xs {
		t.Errorf("non-XOR throughput %.3g must be below XOR %.3g", ns, xs)
	}
}

func TestCalibrate(t *testing.T) {
	co, err := Calibrate(20000)
	if err != nil {
		t.Fatal(err)
	}
	if co.XORNs <= 0 || co.NonXORNs <= 0 {
		t.Fatalf("non-positive calibration: %+v", co)
	}
	if co.NonXORNs <= co.XORNs {
		t.Errorf("AND gates must cost more than XOR: %.1fns vs %.1fns", co.NonXORNs, co.XORNs)
	}
	if co.NonXORNs > 10000 && !raceEnabled {
		t.Errorf("AND cost %.1fns implausibly slow", co.NonXORNs)
	}
	t.Logf("calibrated: XOR %.1f ns, non-XOR %.1f ns (%s)", co.XORNs, co.NonXORNs, co.Source)
}

func TestEstimateString(t *testing.T) {
	s := FromStats(paperB1Stats, Paper()).String()
	if !strings.Contains(s, "Comm=") || !strings.Contains(s, "Exec=") {
		t.Errorf("String() = %q", s)
	}
}

func TestDelayModels(t *testing.T) {
	// DeepSecure linear.
	if DelayDeepSecure(10, 2) != 20 {
		t.Error("linear delay wrong")
	}
	// CryptoNets steps at the slot boundary.
	if DelayCryptoNets(1, 8192, 570) != 570 {
		t.Error("single sample should cost one batch")
	}
	if DelayCryptoNets(8192, 8192, 570) != 570 {
		t.Error("full batch should cost one batch")
	}
	if DelayCryptoNets(8193, 8192, 570) != 1140 {
		t.Error("one extra sample should cost a second batch")
	}
	if DelayCryptoNets(0, 8192, 570) != 0 {
		t.Error("zero samples should be free")
	}
}

func TestCrossoverMatchesPaperShape(t *testing.T) {
	// With the paper's Table 6 numbers: 1.08 s/sample (with pre-p) vs
	// 570.11 s/batch of 8192 ⇒ DeepSecure wins up to 527 samples, and
	// with the second batch boundary the advantage region extends — the
	// paper quotes 2590 using the multi-batch boundary at 4×... verify
	// the first crossover and that larger batches re-open windows.
	n := Crossover(1.08, 570.11, 8192, 20000)
	if n < 500 || n > 540 {
		t.Errorf("crossover = %d, want ≈527", n)
	}
	// Without pre-processing (9.67 s/sample): crossover ≈ 58 (Table 6's
	// 58.96× per-sample improvement).
	n2 := Crossover(9.67, 570.11, 8192, 20000)
	if n2 < 55 || n2 > 62 {
		t.Errorf("crossover w/o pre-p = %d, want ≈59", n2)
	}
	// If the per-sample cost is tiny, DeepSecure wins everywhere scanned.
	if Crossover(1e-9, 570.11, 8192, 1000) != math.MaxInt32 {
		t.Error("always-win case not detected")
	}
}

func TestCommMatchesEq4Exactly(t *testing.T) {
	s := circuit.Stats{XOR: 1000, AND: 1}
	est := FromStats(s, Paper())
	// One AND gate = 2×128 bits = 32 bytes.
	if math.Abs(est.CommMB-32e-6) > 1e-12 {
		t.Errorf("comm for one AND = %g MB, want 32e-6", est.CommMB)
	}
}
