// Package costmodel implements the paper's GC performance characterization
// (Table 2, Eq. 3/4, §4.3): per-gate computation coefficients, the
// 2×128-bit-per-non-XOR communication constant, and the execution-time
// model Texec = Tcomp + Tcomm that regenerates the Table 4/5/6 rows from
// gate counts. Calibrate measures this machine's per-gate costs the same
// way the paper's "set of subroutines" does.
package costmodel

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"deepsecure/internal/circuit"
	"deepsecure/internal/gc"
)

// Coefficients hold per-gate costs and the channel model.
type Coefficients struct {
	// XORNs / NonXORNs: combined garble+evaluate nanoseconds per gate.
	XORNs, NonXORNs float64
	// BandwidthMbps models the client↔server channel.
	BandwidthMbps float64
	// Source describes where the numbers came from.
	Source string
}

// Paper returns the paper's coefficients (§4.3): 62 and 164 CPU cycles
// per XOR / non-XOR gate at 3.4 GHz, and the ~824 Mb/s effective channel
// implied by Table 4's benchmark-1 row (791 MB moved in 9.67−1.98 s).
func Paper() Coefficients {
	const ghz = 3.4
	return Coefficients{
		XORNs:         62 / ghz,
		NonXORNs:      164 / ghz,
		BandwidthMbps: 824,
		Source:        "paper §4.3 (i7-2600 @ 3.4 GHz)",
	}
}

// Calibrate measures this machine's per-gate garble+evaluate cost over n
// gates of each class, mirroring §4.3's characterization subroutines.
func Calibrate(n int) (Coefficients, error) {
	if n < 1000 {
		n = 1000
	}
	rng := rand.New(rand.NewSource(424242))
	g, err := gc.NewGarbler(rng)
	if err != nil {
		return Coefficients{}, err
	}
	e := gc.NewEvaluator()
	lf, lt, err := g.ConstLabels()
	if err != nil {
		return Coefficients{}, err
	}
	e.SetLabel(circuit.WFalse, lf)
	e.SetLabel(circuit.WTrue, lt)
	const nin = 64
	for w := uint32(2); w < 2+nin; w++ {
		if _, err := g.AssignInput(w); err != nil {
			return Coefficients{}, err
		}
		l, err := g.ActiveLabel(w, rng.Intn(2) == 1)
		if err != nil {
			return Coefficients{}, err
		}
		e.SetLabel(w, l)
	}

	// Cycle output wires through a bounded window so the label arrays
	// stay cache-resident, like the streaming execution does.
	const window = 4096
	measure := func(op circuit.Op) (float64, error) {
		var tables []byte
		gates := make([]circuit.Gate, n)
		for i := range gates {
			gates[i] = circuit.Gate{
				Op:  op,
				A:   2 + uint32(rng.Intn(nin)),
				B:   2 + uint32(rng.Intn(nin)),
				Out: 2 + nin + uint32(i%window),
			}
		}
		start := time.Now()
		var err error
		for _, gt := range gates {
			tables, err = g.Garble(gt, tables[:0])
			if err != nil {
				return 0, err
			}
			if _, err = e.Eval(gt, tables); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(n), nil
	}

	xorNs, err := measure(circuit.XOR)
	if err != nil {
		return Coefficients{}, err
	}
	andNs, err := measure(circuit.AND)
	if err != nil {
		return Coefficients{}, err
	}
	return Coefficients{
		XORNs:         xorNs,
		NonXORNs:      andNs,
		BandwidthMbps: 1000,
		Source:        fmt.Sprintf("calibrated over %d gates/class", n),
	}, nil
}

// Estimate is one Table 4/5-style row.
type Estimate struct {
	XOR, NonXOR int64
	CommMB      float64 // garbled tables only, Eq. 4
	CompS       float64 // Eq. 3 over the whole netlist
	ExecS       float64 // Tcomp + Tcomm
}

// FromStats applies Table 2's model to a netlist's gate counts.
func FromStats(s circuit.Stats, co Coefficients) Estimate {
	free := s.FreeXOR()
	non := s.NonXOR()
	commBits := float64(non) * 2 * float64(gc.SecurityBits) // Eq. 4
	commMB := commBits / 8 / 1e6
	compS := (float64(free)*co.XORNs + float64(non)*co.NonXORNs) / 1e9
	execS := compS + commBits/(co.BandwidthMbps*1e6)
	return Estimate{
		XOR:    free,
		NonXOR: non,
		CommMB: commMB,
		CompS:  compS,
		ExecS:  execS,
	}
}

// String renders the estimate as a Table 4 row fragment.
func (e Estimate) String() string {
	return fmt.Sprintf("#XOR=%.2e #non-XOR=%.2e Comm=%.3gMB Comp=%.3gs Exec=%.3gs",
		float64(e.XOR), float64(e.NonXOR), e.CommMB, e.CompS, e.ExecS)
}

// Throughput reports effective gates/second for each class under the
// coefficients (§4.4 quotes 2.56M non-XOR/s and 5.11M XOR/s).
func Throughput(co Coefficients) (xorPerSec, nonXORPerSec float64) {
	return 1e9 / co.XORNs, 1e9 / co.NonXORNs
}

// DelayDeepSecure returns the client-perceived processing delay for n
// samples under DeepSecure's linear-per-sample model (Fig. 6).
func DelayDeepSecure(n int, perSampleS float64) float64 {
	return float64(n) * perSampleS
}

// DelayCryptoNets returns the delay for n samples under the HE baseline's
// batch model: a constant cost per batch of `slots` samples (Fig. 6's
// step function).
func DelayCryptoNets(n, slots int, perBatchS float64) float64 {
	if n <= 0 {
		return 0
	}
	batches := (n + slots - 1) / slots
	return float64(batches) * perBatchS
}

// Crossover returns the largest client batch size for which DeepSecure's
// delay stays at or below the HE baseline's (the paper's "less than 2600
// samples" break-even, §1/Fig. 6). Returns math.MaxInt32 when DeepSecure
// always wins within the scanned range.
func Crossover(perSampleS, perBatchS float64, slots, scanMax int) int {
	last := 0
	for n := 1; n <= scanMax; n++ {
		if DelayDeepSecure(n, perSampleS) <= DelayCryptoNets(n, slots, perBatchS) {
			last = n
		}
	}
	if last == scanMax {
		return math.MaxInt32
	}
	return last
}
