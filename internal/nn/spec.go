package nn

import (
	"encoding/json"
	"fmt"

	"deepsecure/internal/act"
	"deepsecure/internal/fixed"
)

// LayerSpec is the public description of one layer: everything needed to
// regenerate the netlist, and nothing private. Weight VALUES never appear
// here — only the architecture and (when pruning is enabled) the sparsity
// map, which the paper argues is public knowledge (§3.7-ii).
type LayerSpec struct {
	Type string `json:"type"` // dense | conv | maxpool | meanpool | act

	Out    int      `json:"out,omitempty"`    // dense width
	OutC   int      `json:"outc,omitempty"`   // conv maps
	K      int      `json:"k,omitempty"`      // conv/pool kernel
	Stride int      `json:"stride,omitempty"` // conv/pool stride
	Pad    int      `json:"pad,omitempty"`    // conv padding
	Act    act.Kind `json:"act,omitempty"`    // activation kind
	Mask   []bool   `json:"mask,omitempty"`   // sparsity map (nil = dense)
}

// Spec is the public model description the server shares with clients so
// both parties can deterministically generate the same netlist (Fig. 2's
// "publicly known DL architecture" plus the sparsity map).
type Spec struct {
	In     Shape        `json:"in"`
	Format fixed.Format `json:"format"`
	Layers []LayerSpec  `json:"layers"`
}

// Spec extracts the public description of the network.
func (n *Network) Spec(f fixed.Format) *Spec {
	s := &Spec{In: n.In, Format: f}
	for _, l := range n.Layers {
		var ls LayerSpec
		switch v := l.(type) {
		case *Dense:
			ls = LayerSpec{Type: "dense", Out: v.OutN}
			if v.ActiveWeights() != len(v.W) {
				ls.Mask = append([]bool(nil), v.Mask...)
			}
		case *Conv2D:
			ls = LayerSpec{Type: "conv", OutC: v.OutC, K: v.K, Stride: v.Stride, Pad: v.Pad}
			if v.ActiveWeights() != len(v.W) {
				ls.Mask = append([]bool(nil), v.Mask...)
			}
		case *MaxPool2D:
			ls = LayerSpec{Type: "maxpool", K: v.K, Stride: v.Stride}
		case *MeanPool2D:
			ls = LayerSpec{Type: "meanpool", K: v.K}
		case *Activation:
			ls = LayerSpec{Type: "act", Act: v.Kind}
		default:
			ls = LayerSpec{Type: "unknown"}
		}
		s.Layers = append(s.Layers, ls)
	}
	return s
}

// Build reconstructs a weight-less network with the spec's architecture
// and sparsity maps — what the client (who never sees weights) uses to
// generate its copy of the netlist.
func (s *Spec) Build() (*Network, error) {
	var layers []Layer
	for i, ls := range s.Layers {
		switch ls.Type {
		case "dense":
			d := NewDense(ls.Out)
			layers = append(layers, d)
		case "conv":
			layers = append(layers, NewConv2D(ls.OutC, ls.K, ls.Stride, ls.Pad))
		case "maxpool":
			layers = append(layers, NewMaxPool2D(ls.K, ls.Stride))
		case "meanpool":
			layers = append(layers, NewMeanPool2D(ls.K))
		case "act":
			layers = append(layers, NewActivation(ls.Act))
		default:
			return nil, fmt.Errorf("nn: spec layer %d has unknown type %q", i, ls.Type)
		}
	}
	net, err := NewNetwork(s.In, layers...)
	if err != nil {
		return nil, err
	}
	// Install masks after Bind sized the weight arrays.
	li := 0
	for _, l := range net.Layers {
		p, ok := l.(ParamLayer)
		if !ok {
			li++
			continue
		}
		ls := s.Layers[li]
		li++
		if ls.Mask == nil {
			continue
		}
		w, mask := p.Weights()
		if len(ls.Mask) != len(mask) {
			return nil, fmt.Errorf("nn: spec mask length %d, layer has %d weights", len(ls.Mask), len(w))
		}
		copy(mask, ls.Mask)
	}
	return net, nil
}

// Marshal encodes the spec as JSON.
func (s *Spec) Marshal() ([]byte, error) { return json.Marshal(s) }

// UnmarshalSpec decodes a JSON spec.
func UnmarshalSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("nn: spec decode: %w", err)
	}
	return &s, nil
}

// WeightBits serializes the private model parameters in the canonical
// protocol order: layer by layer, active weights in flat-index order, then
// biases — each quantized to the format and emitted LSB-first. This is the
// exact order netgen declares evaluator-input wires, so these bits are the
// server's OT choice vector.
func WeightBits(n *Network, f fixed.Format) []bool {
	var bits []bool
	for _, p := range n.ParamLayers() {
		w, mask := p.Weights()
		for i, v := range w {
			if !mask[i] {
				continue
			}
			bits = append(bits, f.FromFloatSat(v).Bits()...)
		}
		for _, v := range p.Biases() {
			bits = append(bits, f.FromFloatSat(v).Bits()...)
		}
	}
	return bits
}

// WeightBitCount returns len(WeightBits(n, f)) without materializing it.
func WeightBitCount(n *Network, f fixed.Format) int {
	count := 0
	for _, p := range n.ParamLayers() {
		count += p.ActiveWeights() + len(p.Biases())
	}
	return count * f.Bits()
}
