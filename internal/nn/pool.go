package nn

import (
	"fmt"
	"math"

	"deepsecure/internal/fixed"
)

// MaxPool2D computes the maximum over K×K windows with the given stride
// (Table 1's M1P row).
type MaxPool2D struct {
	K, Stride int
	in, out   Shape

	lastIn  []float64
	lastArg []int
}

// NewMaxPool2D builds a max-pooling layer; stride defaults to K when 0.
func NewMaxPool2D(k, stride int) *MaxPool2D {
	if stride == 0 {
		stride = k
	}
	return &MaxPool2D{K: k, Stride: stride}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("M1P%d", p.K) }

// Bind implements Layer.
func (p *MaxPool2D) Bind(in Shape) (Shape, error) {
	if in.H < p.K || in.W < p.K {
		return Shape{}, fmt.Errorf("maxpool: input %v smaller than window %d", in, p.K)
	}
	p.in = in
	p.out = Shape{C: in.C, H: (in.H-p.K)/p.Stride + 1, W: (in.W-p.K)/p.Stride + 1}
	return p.out, nil
}

func (p *MaxPool2D) window(c, oy, ox int) []int {
	idx := make([]int, 0, p.K*p.K)
	for ky := 0; ky < p.K; ky++ {
		for kx := 0; kx < p.K; kx++ {
			iy := oy*p.Stride + ky
			ix := ox*p.Stride + kx
			idx = append(idx, (c*p.in.H+iy)*p.in.W+ix)
		}
	}
	return idx
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x []float64) []float64 {
	out := make([]float64, p.out.Len())
	o := 0
	for c := 0; c < p.in.C; c++ {
		for oy := 0; oy < p.out.H; oy++ {
			for ox := 0; ox < p.out.W; ox++ {
				best := math.Inf(-1)
				for _, i := range p.window(c, oy, ox) {
					if x[i] > best {
						best = x[i]
					}
				}
				out[o] = best
				o++
			}
		}
	}
	return out
}

// ForwardFixed implements Layer: a left-to-right max chain, matching the
// comparator tree emitted by netgen.
func (p *MaxPool2D) ForwardFixed(f fixed.Format, x []fixed.Num) []fixed.Num {
	out := make([]fixed.Num, p.out.Len())
	o := 0
	for c := 0; c < p.in.C; c++ {
		for oy := 0; oy < p.out.H; oy++ {
			for ox := 0; ox < p.out.W; ox++ {
				idx := p.window(c, oy, ox)
				best := x[idx[0]]
				for _, i := range idx[1:] {
					if x[i].Cmp(best) > 0 {
						best = x[i]
					}
				}
				out[o] = best
				o++
			}
		}
	}
	return out
}

// ForwardT implements Backprop.
func (p *MaxPool2D) ForwardT(x []float64) []float64 {
	p.lastIn = append(p.lastIn[:0], x...)
	p.lastArg = p.lastArg[:0]
	out := make([]float64, p.out.Len())
	o := 0
	for c := 0; c < p.in.C; c++ {
		for oy := 0; oy < p.out.H; oy++ {
			for ox := 0; ox < p.out.W; ox++ {
				bestI := -1
				best := math.Inf(-1)
				for _, i := range p.window(c, oy, ox) {
					if x[i] > best {
						best, bestI = x[i], i
					}
				}
				out[o] = best
				p.lastArg = append(p.lastArg, bestI)
				o++
			}
		}
	}
	return out
}

// Backward implements Backprop.
func (p *MaxPool2D) Backward(grad []float64) []float64 {
	din := make([]float64, p.in.Len())
	for o, i := range p.lastArg {
		din[i] += grad[o]
	}
	return din
}

// Step implements Backprop.
func (p *MaxPool2D) Step(float64, int) {}

// MeanPool2D averages non-overlapping K×K windows (Table 1's M2P row).
// K must be a power of two so the circuit divides with a free shift.
type MeanPool2D struct {
	K       int
	in, out Shape
}

// NewMeanPool2D builds a mean-pooling layer.
func NewMeanPool2D(k int) *MeanPool2D { return &MeanPool2D{K: k} }

// Name implements Layer.
func (p *MeanPool2D) Name() string { return fmt.Sprintf("M2P%d", p.K) }

// Bind implements Layer.
func (p *MeanPool2D) Bind(in Shape) (Shape, error) {
	if p.K < 1 || (p.K*p.K)&(p.K*p.K-1) != 0 {
		return Shape{}, fmt.Errorf("meanpool: window %d² must be a power of two", p.K)
	}
	if in.H < p.K || in.W < p.K {
		return Shape{}, fmt.Errorf("meanpool: input %v smaller than window %d", in, p.K)
	}
	p.in = in
	p.out = Shape{C: in.C, H: in.H / p.K, W: in.W / p.K}
	return p.out, nil
}

func (p *MeanPool2D) window(c, oy, ox int) []int {
	idx := make([]int, 0, p.K*p.K)
	for ky := 0; ky < p.K; ky++ {
		for kx := 0; kx < p.K; kx++ {
			iy := oy*p.K + ky
			ix := ox*p.K + kx
			idx = append(idx, (c*p.in.H+iy)*p.in.W+ix)
		}
	}
	return idx
}

// Forward implements Layer.
func (p *MeanPool2D) Forward(x []float64) []float64 {
	out := make([]float64, p.out.Len())
	o := 0
	inv := 1.0 / float64(p.K*p.K)
	for c := 0; c < p.in.C; c++ {
		for oy := 0; oy < p.out.H; oy++ {
			for ox := 0; ox < p.out.W; ox++ {
				sum := 0.0
				for _, i := range p.window(c, oy, ox) {
					sum += x[i]
				}
				out[o] = sum * inv
				o++
			}
		}
	}
	return out
}

// ForwardFixed implements Layer: exact-sum then arithmetic shift, matching
// stdcell.MeanPool.
func (p *MeanPool2D) ForwardFixed(f fixed.Format, x []fixed.Num) []fixed.Num {
	out := make([]fixed.Num, p.out.Len())
	log := 0
	for 1<<uint(log) < p.K*p.K {
		log++
	}
	o := 0
	for c := 0; c < p.in.C; c++ {
		for oy := 0; oy < p.out.H; oy++ {
			for ox := 0; ox < p.out.W; ox++ {
				var sum int64
				for _, i := range p.window(c, oy, ox) {
					sum += x[i].Raw()
				}
				out[o] = f.FromRaw(sum >> uint(log))
				o++
			}
		}
	}
	return out
}

// ForwardT implements Backprop.
func (p *MeanPool2D) ForwardT(x []float64) []float64 { return p.Forward(x) }

// Backward implements Backprop.
func (p *MeanPool2D) Backward(grad []float64) []float64 {
	din := make([]float64, p.in.Len())
	inv := 1.0 / float64(p.K*p.K)
	o := 0
	for c := 0; c < p.in.C; c++ {
		for oy := 0; oy < p.out.H; oy++ {
			for ox := 0; ox < p.out.W; ox++ {
				for _, i := range p.window(c, oy, ox) {
					din[i] += grad[o] * inv
				}
				o++
			}
		}
	}
	return din
}

// Step implements Backprop.
func (p *MeanPool2D) Step(float64, int) {}
