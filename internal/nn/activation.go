package nn

import (
	"math"

	"deepsecure/internal/act"
	"deepsecure/internal/fixed"
)

// Activation applies an element-wise non-linearity. The float path uses
// the exact function (for training); the fixed path uses the selected
// GC realization from internal/act, bit-exact with the circuit.
type Activation struct {
	Kind act.Kind
	impl actImpl
	n    int

	lastOut []float64
	lastIn  []float64
}

// NewActivation builds an activation layer.
func NewActivation(kind act.Kind) *Activation {
	return &Activation{Kind: kind, impl: actImpl{kind: kind}}
}

// Name implements Layer.
func (a *Activation) Name() string {
	switch {
	case a.Kind == act.ReLU:
		return "ReLu"
	case a.Kind.IsTanh():
		return "Tanh"
	case a.Kind.IsSigmoid():
		return "Sigmoid"
	default:
		return "Id"
	}
}

// Bind implements Layer.
func (a *Activation) Bind(in Shape) (Shape, error) {
	a.n = in.Len()
	return in, nil
}

func (a *Activation) f(x float64) float64 {
	switch {
	case a.Kind == act.ReLU:
		return math.Max(0, x)
	case a.Kind.IsTanh():
		return math.Tanh(x)
	case a.Kind.IsSigmoid():
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

func (a *Activation) df(x, y float64) float64 {
	switch {
	case a.Kind == act.ReLU:
		if x > 0 {
			return 1
		}
		return 0
	case a.Kind.IsTanh():
		return 1 - y*y
	case a.Kind.IsSigmoid():
		return y * (1 - y)
	default:
		return 1
	}
}

// Forward implements Layer.
func (a *Activation) Forward(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = a.f(v)
	}
	return out
}

// ForwardFixed implements Layer.
func (a *Activation) ForwardFixed(f fixed.Format, x []fixed.Num) []fixed.Num {
	impl := a.impl.get(f)
	out := make([]fixed.Num, len(x))
	for i, v := range x {
		out[i] = impl.Eval(v)
	}
	return out
}

// Impl exposes the per-format activation realization (used by netgen).
func (a *Activation) Impl(f fixed.Format) *act.Impl { return a.impl.get(f) }

// ForwardT implements Backprop.
func (a *Activation) ForwardT(x []float64) []float64 {
	a.lastIn = append(a.lastIn[:0], x...)
	out := a.Forward(x)
	a.lastOut = append(a.lastOut[:0], out...)
	return out
}

// Backward implements Backprop.
func (a *Activation) Backward(grad []float64) []float64 {
	din := make([]float64, len(grad))
	for i, g := range grad {
		din[i] = g * a.df(a.lastIn[i], a.lastOut[i])
	}
	return din
}

// Step implements Backprop.
func (a *Activation) Step(float64, int) {}
