package nn

import (
	"math"
	"math/rand"
	"testing"

	"deepsecure/internal/act"
	"deepsecure/internal/fixed"
)

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(2)
	if _, err := d.Bind(Vec(3)); err != nil {
		t.Fatal(err)
	}
	copy(d.W, []float64{1, 2, 3, -1, 0.5, 0})
	copy(d.B, []float64{0.5, -0.5})
	got := d.Forward([]float64{1, 1, 1})
	if math.Abs(got[0]-6.5) > 1e-12 || math.Abs(got[1]+1.0) > 1e-12 {
		t.Errorf("dense forward = %v, want [6.5 -1]", got)
	}
}

func TestDenseMaskZeroesWeights(t *testing.T) {
	d := NewDense(1)
	if _, err := d.Bind(Vec(2)); err != nil {
		t.Fatal(err)
	}
	copy(d.W, []float64{5, 7})
	d.Mask[0] = false
	got := d.Forward([]float64{1, 1})
	if got[0] != 7 {
		t.Errorf("masked forward = %v, want 7", got[0])
	}
	if d.ActiveWeights() != 1 {
		t.Errorf("ActiveWeights = %d", d.ActiveWeights())
	}
}

func TestConvShapePaperBenchmark1(t *testing.T) {
	// Benchmark 1 conv: 28×28 input, 5×5 kernel, stride 2, 5 maps,
	// pad 1 ⇒ 5×13×13 = 845 outputs (paper's 5×13×13).
	c := NewConv2D(5, 5, 2, 1)
	out, err := c.Bind(Shape{C: 1, H: 28, W: 28})
	if err != nil {
		t.Fatal(err)
	}
	if out != (Shape{C: 5, H: 13, W: 13}) {
		t.Errorf("conv out = %v, want 5x13x13", out)
	}
}

func TestConvForwardKnown(t *testing.T) {
	// 1 channel, 3×3 input, 2×2 kernel stride 1 no pad: manual check.
	c := NewConv2D(1, 2, 1, 0)
	if _, err := c.Bind(Shape{C: 1, H: 3, W: 3}); err != nil {
		t.Fatal(err)
	}
	copy(c.W, []float64{1, 0, 0, 1}) // identity-diagonal kernel
	x := []float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	got := c.Forward(x)
	want := []float64{1 + 5, 2 + 6, 4 + 8, 5 + 9}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("conv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestPoolsKnown(t *testing.T) {
	x := []float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		-1, -2, 0, 0,
		-3, -4, 0, 4,
	}
	mp := NewMaxPool2D(2, 0)
	if _, err := mp.Bind(Shape{C: 1, H: 4, W: 4}); err != nil {
		t.Fatal(err)
	}
	got := mp.Forward(x)
	want := []float64{4, 8, -1, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("maxpool[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	ap := NewMeanPool2D(2)
	if _, err := ap.Bind(Shape{C: 1, H: 4, W: 4}); err != nil {
		t.Fatal(err)
	}
	got = ap.Forward(x)
	want = []float64{2.5, 6.5, -2.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("meanpool[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMeanPoolFixedMatchesShiftSemantics(t *testing.T) {
	f := fixed.Default
	ap := NewMeanPool2D(2)
	if _, err := ap.Bind(Shape{C: 1, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	xs := []fixed.Num{f.FromFloat(1), f.FromFloat(2), f.FromFloat(3), f.FromFloat(3.5)}
	got := ap.ForwardFixed(f, xs)
	var sum int64
	for _, x := range xs {
		sum += x.Raw()
	}
	if got[0].Raw() != f.Wrap(sum>>2) {
		t.Errorf("meanpool fixed = %d, want %d", got[0].Raw(), sum>>2)
	}
}

func buildSmallNet(t *testing.T, kind act.Kind) *Network {
	t.Helper()
	net, err := NewNetwork(Vec(6),
		NewDense(5),
		NewActivation(kind),
		NewDense(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	net.InitWeights(rand.New(rand.NewSource(1)))
	return net
}

func TestFixedForwardTracksFloat(t *testing.T) {
	f := fixed.Default
	net := buildSmallNet(t, act.TanhCORDIC)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		ff := net.Forward(x)
		fx := net.ForwardFixed(f, f.Vec(x))
		for i := range ff {
			if math.Abs(ff[i]-fx[i].Float()) > 0.05 {
				t.Errorf("trial %d out %d: float %g vs fixed %g", trial, i, ff[i], fx[i].Float())
			}
		}
	}
}

func TestPredictConsistency(t *testing.T) {
	f := fixed.Default
	net := buildSmallNet(t, act.ReLU)
	rng := rand.New(rand.NewSource(3))
	agree := 0
	const n = 100
	for trial := 0; trial < n; trial++ {
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		if net.Predict(x) == net.PredictFixed(f, x) {
			agree++
		}
	}
	if agree < n*9/10 {
		t.Errorf("float/fixed predictions agree only %d/%d", agree, n)
	}
}

func TestArchString(t *testing.T) {
	net, err := NewNetwork(Shape{C: 1, H: 28, W: 28},
		NewConv2D(5, 5, 2, 1),
		NewActivation(act.ReLU),
		NewDense(100),
		NewActivation(act.ReLU),
		NewDense(10),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := "28x28-5C2-ReLu-100FC-ReLu-10FC-Softmax"
	if got := net.Arch(); got != want {
		t.Errorf("Arch = %q, want %q", got, want)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	net := buildSmallNet(t, act.SigmoidCORDIC)
	// Prune one weight so the mask travels through the spec.
	d := net.Layers[0].(*Dense)
	d.Mask[3] = false
	f := fixed.Default
	spec := net.Spec(f)
	data, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := UnmarshalSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	net2, err := spec2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if net2.Arch() != net.Arch() {
		t.Errorf("arch mismatch: %q vs %q", net2.Arch(), net.Arch())
	}
	d2 := net2.Layers[0].(*Dense)
	if d2.Mask[3] || !d2.Mask[0] {
		t.Error("mask did not survive the spec round trip")
	}
	if WeightBitCount(net2, f) != WeightBitCount(net, f) {
		t.Errorf("weight bit counts differ: %d vs %d", WeightBitCount(net2, f), WeightBitCount(net, f))
	}
}

func TestWeightBitsCanonical(t *testing.T) {
	f := fixed.Default
	net := buildSmallNet(t, act.ReLU)
	bits := WeightBits(net, f)
	if len(bits) != WeightBitCount(net, f) {
		t.Fatalf("WeightBits length %d != count %d", len(bits), WeightBitCount(net, f))
	}
	// First 16 bits must be the quantization of W[0] of the first layer.
	d := net.Layers[0].(*Dense)
	want := f.FromFloatSat(d.W[0]).Bits()
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("canonical order broken at bit %d", i)
		}
	}
	// Pruning a weight must remove exactly 16 bits.
	d.Mask[0] = false
	if got := len(WeightBits(net, f)); got != len(bits)-f.Bits() {
		t.Errorf("after pruning 1 weight: %d bits, want %d", got, len(bits)-f.Bits())
	}
}

// numericGrad computes the central-difference gradient of loss w.r.t.
// params[i].
func numericGrad(eval func() float64, param *float64) float64 {
	const h = 1e-5
	old := *param
	*param = old + h
	up := eval()
	*param = old - h
	down := eval()
	*param = old
	return (up - down) / (2 * h)
}

func TestBackpropGradCheckDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := buildSmallNet(t, act.TanhCORDIC)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	target := 1

	// Loss: softmax cross-entropy on the final layer.
	loss := func() float64 {
		out := net.Forward(x)
		return crossEntropy(out, target)
	}

	// Backprop pass.
	h := x
	for _, l := range net.Layers {
		h = l.(Backprop).ForwardT(h)
	}
	grad := softmaxGrad(h, target)
	for i := len(net.Layers) - 1; i >= 0; i-- {
		grad = net.Layers[i].(Backprop).Backward(grad)
	}

	d := net.Layers[0].(*Dense)
	for _, wi := range []int{0, 7, 13, 29} {
		want := numericGrad(loss, &d.W[wi])
		got := d.gradW[wi]
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("dW[%d]: backprop %g vs numeric %g", wi, got, want)
		}
	}
	for _, bi := range []int{0, 3} {
		want := numericGrad(loss, &d.B[bi])
		got := d.gradB[bi]
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("dB[%d]: backprop %g vs numeric %g", bi, got, want)
		}
	}
}

func TestBackpropGradCheckConv(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net, err := NewNetwork(Shape{C: 1, H: 6, W: 6},
		NewConv2D(2, 3, 1, 1),
		NewActivation(act.ReLU),
		NewMaxPool2D(2, 0),
		NewDense(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	net.InitWeights(rng)
	x := make([]float64, 36)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	target := 2
	loss := func() float64 { return crossEntropy(net.Forward(x), target) }

	h := x
	for _, l := range net.Layers {
		h = l.(Backprop).ForwardT(h)
	}
	grad := softmaxGrad(h, target)
	for i := len(net.Layers) - 1; i >= 0; i-- {
		grad = net.Layers[i].(Backprop).Backward(grad)
	}
	c := net.Layers[0].(*Conv2D)
	for _, wi := range []int{0, 5, 11, 17} {
		want := numericGrad(loss, &c.W[wi])
		got := c.gradW[wi]
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("conv dW[%d]: backprop %g vs numeric %g", wi, got, want)
		}
	}
}

// crossEntropy and softmaxGrad are tiny local copies of the training loss
// (the train package owns the real ones) to keep this package test-local.
func crossEntropy(logits []float64, target int) float64 {
	maxv := logits[argmaxF(logits)]
	var sum float64
	for _, v := range logits {
		sum += math.Exp(v - maxv)
	}
	return math.Log(sum) - (logits[target] - maxv)
}

func softmaxGrad(logits []float64, target int) []float64 {
	maxv := logits[argmaxF(logits)]
	var sum float64
	exp := make([]float64, len(logits))
	for i, v := range logits {
		exp[i] = math.Exp(v - maxv)
		sum += exp[i]
	}
	g := make([]float64, len(logits))
	for i := range g {
		g[i] = exp[i] / sum
	}
	g[target] -= 1
	return g
}

func TestTotalParams(t *testing.T) {
	net := buildSmallNet(t, act.ReLU)
	active, total := net.TotalParams()
	want := 6*5 + 5 + 5*3 + 3
	if total != want || active != want {
		t.Errorf("params = (%d,%d), want (%d,%d)", active, total, want, want)
	}
	net.Layers[0].(*Dense).Mask[0] = false
	active, _ = net.TotalParams()
	if active != want-1 {
		t.Errorf("active after prune = %d, want %d", active, want-1)
	}
}

func TestBindErrors(t *testing.T) {
	if _, err := NewNetwork(Shape{C: 1, H: 2, W: 2}, NewConv2D(1, 5, 1, 0)); err == nil {
		t.Error("kernel larger than input must fail to bind")
	}
	if _, err := NewNetwork(Shape{C: 1, H: 4, W: 4}, NewMeanPool2D(3)); err == nil {
		t.Error("non-power-of-two mean pool must fail to bind")
	}
	if _, err := NewNetwork(Vec(0), NewDense(3)); err == nil {
		t.Error("empty input must fail to bind")
	}
}
