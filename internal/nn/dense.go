package nn

import (
	"fmt"
	"math"
	"math/rand"

	"deepsecure/internal/fixed"
)

// Dense is a fully-connected layer: out = W·x + b, with a pruning mask
// over W (Table 1's Fully-Connected / matrix-vector multiplication row).
type Dense struct {
	InN, OutN int
	W         []float64 // OutN×InN row-major
	B         []float64
	Mask      []bool // parallel to W, true = active

	// training state
	lastIn []float64
	gradW  []float64
	gradB  []float64
	velW   []float64
	velB   []float64
}

// NewDense builds an untrained fully-connected layer with all weights
// active; OutN is the layer width.
func NewDense(out int) *Dense { return &Dense{OutN: out} }

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("%dFC", d.OutN) }

// Bind implements Layer.
func (d *Dense) Bind(in Shape) (Shape, error) {
	n := in.Len()
	if n == 0 {
		return Shape{}, fmt.Errorf("dense: empty input shape")
	}
	d.InN = n
	if d.W == nil {
		d.W = make([]float64, d.OutN*n)
		d.B = make([]float64, d.OutN)
		d.Mask = make([]bool, d.OutN*n)
		for i := range d.Mask {
			d.Mask[i] = true
		}
	}
	if len(d.W) != d.OutN*n {
		return Shape{}, fmt.Errorf("dense: weights shaped for %d inputs, got %d", len(d.W)/d.OutN, n)
	}
	return Vec(d.OutN), nil
}

func (d *Dense) initWeights(rng *rand.Rand) {
	scale := math.Sqrt(2.0 / float64(d.InN))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * scale
	}
	for i := range d.B {
		d.B[i] = 0
	}
}

// Weights implements ParamLayer.
func (d *Dense) Weights() ([]float64, []bool) { return d.W, d.Mask }

// Biases implements ParamLayer.
func (d *Dense) Biases() []float64 { return d.B }

// ActiveWeights implements ParamLayer.
func (d *Dense) ActiveWeights() int {
	n := 0
	for _, m := range d.Mask {
		if m {
			n++
		}
	}
	return n
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	out := make([]float64, d.OutN)
	for o := 0; o < d.OutN; o++ {
		acc := d.B[o]
		row := d.W[o*d.InN : (o+1)*d.InN]
		msk := d.Mask[o*d.InN : (o+1)*d.InN]
		for i, w := range row {
			if msk[i] {
				acc += w * x[i]
			}
		}
		out[o] = acc
	}
	return out
}

// ForwardFixed implements Layer: the canonical MAC order is bias first,
// then inputs ascending, wrapping at every step — exactly the circuit.
func (d *Dense) ForwardFixed(f fixed.Format, x []fixed.Num) []fixed.Num {
	out := make([]fixed.Num, d.OutN)
	for o := 0; o < d.OutN; o++ {
		acc := f.FromFloatSat(d.B[o])
		for i := 0; i < d.InN; i++ {
			if !d.Mask[o*d.InN+i] {
				continue
			}
			w := f.FromFloatSat(d.W[o*d.InN+i])
			acc = acc.Add(x[i].Mul(w))
		}
		out[o] = acc
	}
	return out
}

// ForwardT implements Backprop.
func (d *Dense) ForwardT(x []float64) []float64 {
	d.lastIn = append(d.lastIn[:0], x...)
	return d.Forward(x)
}

// Backward implements Backprop.
func (d *Dense) Backward(grad []float64) []float64 {
	if d.gradW == nil {
		d.gradW = make([]float64, len(d.W))
		d.gradB = make([]float64, len(d.B))
	}
	in := make([]float64, d.InN)
	for o := 0; o < d.OutN; o++ {
		g := grad[o]
		d.gradB[o] += g
		base := o * d.InN
		for i := 0; i < d.InN; i++ {
			if !d.Mask[base+i] {
				continue
			}
			d.gradW[base+i] += g * d.lastIn[i]
			in[i] += g * d.W[base+i]
		}
	}
	return in
}

// Step implements Backprop (SGD with momentum 0.9).
func (d *Dense) Step(lr float64, batch int) {
	if d.gradW == nil {
		return
	}
	if d.velW == nil {
		d.velW = make([]float64, len(d.W))
		d.velB = make([]float64, len(d.B))
	}
	scale := lr / float64(batch)
	const mom = 0.9
	for i := range d.W {
		d.velW[i] = mom*d.velW[i] - scale*d.gradW[i]
		if d.Mask[i] {
			d.W[i] += d.velW[i]
		} else {
			d.W[i] = 0
		}
		d.gradW[i] = 0
	}
	for i := range d.B {
		d.velB[i] = mom*d.velB[i] - scale*d.gradB[i]
		d.B[i] += d.velB[i]
		d.gradB[i] = 0
	}
}
