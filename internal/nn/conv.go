package nn

import (
	"fmt"
	"math"
	"math/rand"

	"deepsecure/internal/fixed"
)

// Conv2D is a 2D convolution layer (Table 1's first row): OutC maps of
// K×K kernels with the given stride and symmetric zero padding.
type Conv2D struct {
	OutC, K, Stride, Pad int

	in   Shape
	out  Shape
	W    []float64 // [OutC][InC][K][K] flattened
	B    []float64
	Mask []bool

	lastIn []float64
	gradW  []float64
	gradB  []float64
	velW   []float64
	velB   []float64
}

// NewConv2D builds a convolution layer.
func NewConv2D(outC, k, stride, pad int) *Conv2D {
	return &Conv2D{OutC: outC, K: k, Stride: stride, Pad: pad}
}

// Name implements Layer (paper style: "5C2" = 5 maps stride 2).
func (c *Conv2D) Name() string { return fmt.Sprintf("%dC%d", c.OutC, c.Stride) }

// Bind implements Layer.
func (c *Conv2D) Bind(in Shape) (Shape, error) {
	if in.H < c.K || in.W < c.K {
		return Shape{}, fmt.Errorf("conv: input %v smaller than kernel %d", in, c.K)
	}
	if c.Stride < 1 {
		return Shape{}, fmt.Errorf("conv: stride %d", c.Stride)
	}
	c.in = in
	oh := (in.H+2*c.Pad-c.K)/c.Stride + 1
	ow := (in.W+2*c.Pad-c.K)/c.Stride + 1
	c.out = Shape{C: c.OutC, H: oh, W: ow}
	n := c.OutC * in.C * c.K * c.K
	if c.W == nil {
		c.W = make([]float64, n)
		c.B = make([]float64, c.OutC)
		c.Mask = make([]bool, n)
		for i := range c.Mask {
			c.Mask[i] = true
		}
	}
	if len(c.W) != n {
		return Shape{}, fmt.Errorf("conv: weights sized %d, need %d", len(c.W), n)
	}
	return c.out, nil
}

func (c *Conv2D) initWeights(rng *rand.Rand) {
	fanIn := float64(c.in.C * c.K * c.K)
	scale := math.Sqrt(2.0 / fanIn)
	for i := range c.W {
		c.W[i] = rng.NormFloat64() * scale
	}
	for i := range c.B {
		c.B[i] = 0
	}
}

// Weights implements ParamLayer.
func (c *Conv2D) Weights() ([]float64, []bool) { return c.W, c.Mask }

// Biases implements ParamLayer.
func (c *Conv2D) Biases() []float64 { return c.B }

// ActiveWeights implements ParamLayer.
func (c *Conv2D) ActiveWeights() int {
	n := 0
	for _, m := range c.Mask {
		if m {
			n++
		}
	}
	return n
}

func (c *Conv2D) wIdx(oc, ic, ky, kx int) int {
	return ((oc*c.in.C+ic)*c.K+ky)*c.K + kx
}

func (c *Conv2D) inIdx(ic, y, x int) int {
	return (ic*c.in.H+y)*c.in.W + x
}

func (c *Conv2D) outIdx(oc, y, x int) int {
	return (oc*c.out.H+y)*c.out.W + x
}

// Forward implements Layer.
func (c *Conv2D) Forward(x []float64) []float64 {
	out := make([]float64, c.out.Len())
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < c.out.H; oy++ {
			for ox := 0; ox < c.out.W; ox++ {
				acc := c.B[oc]
				for ic := 0; ic < c.in.C; ic++ {
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride - c.Pad + ky
						if iy < 0 || iy >= c.in.H {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride - c.Pad + kx
							if ix < 0 || ix >= c.in.W {
								continue
							}
							wi := c.wIdx(oc, ic, ky, kx)
							if c.Mask[wi] {
								acc += c.W[wi] * x[c.inIdx(ic, iy, ix)]
							}
						}
					}
				}
				out[c.outIdx(oc, oy, ox)] = acc
			}
		}
	}
	return out
}

// ForwardFixed implements Layer with the canonical wrap-accumulate order:
// bias, then (ic, ky, kx) lexicographic, skipping pad and masked taps.
func (c *Conv2D) ForwardFixed(f fixed.Format, x []fixed.Num) []fixed.Num {
	out := make([]fixed.Num, c.out.Len())
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < c.out.H; oy++ {
			for ox := 0; ox < c.out.W; ox++ {
				acc := f.FromFloatSat(c.B[oc])
				for ic := 0; ic < c.in.C; ic++ {
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride - c.Pad + ky
						if iy < 0 || iy >= c.in.H {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride - c.Pad + kx
							if ix < 0 || ix >= c.in.W {
								continue
							}
							wi := c.wIdx(oc, ic, ky, kx)
							if !c.Mask[wi] {
								continue
							}
							w := f.FromFloatSat(c.W[wi])
							acc = acc.Add(x[c.inIdx(ic, iy, ix)].Mul(w))
						}
					}
				}
				out[c.outIdx(oc, oy, ox)] = acc
			}
		}
	}
	return out
}

// ForwardT implements Backprop.
func (c *Conv2D) ForwardT(x []float64) []float64 {
	c.lastIn = append(c.lastIn[:0], x...)
	return c.Forward(x)
}

// Backward implements Backprop.
func (c *Conv2D) Backward(grad []float64) []float64 {
	if c.gradW == nil {
		c.gradW = make([]float64, len(c.W))
		c.gradB = make([]float64, len(c.B))
	}
	din := make([]float64, c.in.Len())
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < c.out.H; oy++ {
			for ox := 0; ox < c.out.W; ox++ {
				g := grad[c.outIdx(oc, oy, ox)]
				c.gradB[oc] += g
				for ic := 0; ic < c.in.C; ic++ {
					for ky := 0; ky < c.K; ky++ {
						iy := oy*c.Stride - c.Pad + ky
						if iy < 0 || iy >= c.in.H {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox*c.Stride - c.Pad + kx
							if ix < 0 || ix >= c.in.W {
								continue
							}
							wi := c.wIdx(oc, ic, ky, kx)
							if !c.Mask[wi] {
								continue
							}
							ii := c.inIdx(ic, iy, ix)
							c.gradW[wi] += g * c.lastIn[ii]
							din[ii] += g * c.W[wi]
						}
					}
				}
			}
		}
	}
	return din
}

// Step implements Backprop.
func (c *Conv2D) Step(lr float64, batch int) {
	if c.gradW == nil {
		return
	}
	if c.velW == nil {
		c.velW = make([]float64, len(c.W))
		c.velB = make([]float64, len(c.B))
	}
	scale := lr / float64(batch)
	const mom = 0.9
	for i := range c.W {
		c.velW[i] = mom*c.velW[i] - scale*c.gradW[i]
		if c.Mask[i] {
			c.W[i] += c.velW[i]
		} else {
			c.W[i] = 0
		}
		c.gradW[i] = 0
	}
	for i := range c.B {
		c.velB[i] = mom*c.velB[i] - scale*c.gradB[i]
		c.B[i] += c.velB[i]
		c.gradB[i] = 0
	}
}
