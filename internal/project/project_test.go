package project

import (
	"math/rand"
	"testing"

	"deepsecure/internal/act"
	"deepsecure/internal/datasets"
	"deepsecure/internal/linalg"
	"deepsecure/internal/nn"
	"deepsecure/internal/train"
)

func audioish(t *testing.T) *datasets.Set {
	t.Helper()
	set, err := datasets.Generate(datasets.Config{
		Name: "proj-test", Dim: 48, Classes: 4, Rank: 8, Noise: 0.04,
		Train: 400, Test: 120, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func factory(hidden, classes int) func(int) (*nn.Network, error) {
	return func(in int) (*nn.Network, error) {
		net, err := nn.NewNetwork(nn.Vec(in),
			nn.NewDense(hidden),
			nn.NewActivation(act.TanhCORDIC),
			nn.NewDense(classes),
		)
		if err != nil {
			return nil, err
		}
		net.InitWeights(rand.New(rand.NewSource(77)))
		return net, nil
	}
}

func TestFitCompressesAndKeepsAccuracy(t *testing.T) {
	set := audioish(t)
	cfg := DefaultConfig()
	cfg.Retrain.Epochs = 6
	res, err := Fit(set.TrainX, set.TrainY, set.TestX, set.TestY, cfg, factory(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Compression: the data has intrinsic rank ~8 in dim 48, so the
	// dictionary must be far smaller than the ambient dimension.
	if res.Atoms >= 48/2 {
		t.Errorf("no compression: %d atoms for dim 48", res.Atoms)
	}
	if res.Atoms < 4 {
		t.Errorf("implausibly few atoms: %d", res.Atoms)
	}
	// Accuracy preserved (paper: "without sacrificing the accuracy").
	emb := res.EmbedAll(set.TestX)
	acc := train.Accuracy(res.Net, emb, set.TestY)
	if acc < 0.80 {
		t.Errorf("projected-model accuracy %.2f too low", acc)
	}
	if res.Checkpoints == 0 {
		t.Error("no retraining checkpoints executed")
	}
}

func TestProjectionMatrixSecurityProperties(t *testing.T) {
	// Proposition 3.1: the released information is exactly the subspace —
	// W = UUᵀ must be a symmetric idempotent projector and U orthonormal.
	set := audioish(t)
	cfg := DefaultConfig()
	cfg.Retrain.Epochs = 2
	res, err := Fit(set.TrainX, set.TrainY, set.TestX, set.TestY, cfg, factory(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	u := res.U
	utu := u.T().Mul(u)
	if d := utu.Sub(linalg.Identity(u.Cols)).FrobNorm(); d > 1e-8 {
		t.Errorf("U not orthonormal: %g", d)
	}
	w := res.Projector()
	if d := w.Sub(w.T()).FrobNorm(); d > 1e-8 {
		t.Errorf("W not symmetric: %g", d)
	}
	if d := w.Mul(w).Sub(w).FrobNorm(); d > 1e-8 {
		t.Errorf("W not idempotent: %g", d)
	}
}

func TestEmbedConsistency(t *testing.T) {
	set := audioish(t)
	cfg := DefaultConfig()
	cfg.Retrain.Epochs = 2
	res, err := Fit(set.TrainX, set.TrainY, set.TestX, set.TestY, cfg, factory(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	x := set.TestX[0]
	y := res.Embed(x)
	if len(y) != res.Atoms {
		t.Fatalf("embedding dim %d, want %d", len(y), res.Atoms)
	}
	// Uᵀ(UUᵀ x) = Uᵀx: embedding is invariant to pre-projection.
	wx := res.Projector().MulVec(x)
	y2 := res.Embed(wx)
	for i := range y {
		if diff := y[i] - y2[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("embedding not projection-invariant at %d: %g vs %g", i, y[i], y2[i])
		}
	}
}

func TestGammaControlsAtomCount(t *testing.T) {
	set := audioish(t)
	atoms := func(gamma float64) int {
		cfg := DefaultConfig()
		cfg.Gamma = gamma
		cfg.Retrain.Epochs = 1
		cfg.Patience = 100 // disable early stop for this comparison
		res, err := Fit(set.TrainX, set.TrainY, set.TestX, set.TestY, cfg, factory(8, 4))
		if err != nil {
			t.Fatal(err)
		}
		return res.Atoms
	}
	loose := atoms(0.6)
	tight := atoms(0.15)
	if loose >= tight {
		t.Errorf("higher gamma should give fewer atoms: γ=0.6→%d, γ=0.15→%d", loose, tight)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, nil, nil, DefaultConfig(), factory(4, 2)); err == nil {
		t.Error("empty training set accepted")
	}
	set := audioish(t)
	cfg := DefaultConfig()
	cfg.Gamma = 2.0 // relative error can never exceed 1 after the first atom
	cfg.MaxAtoms = 0
	if _, err := Fit(set.TrainX, set.TrainY, set.TestX, set.TestY, cfg, factory(4, 4)); err != nil {
		// First sample always joins (Vp=1 when empty is not > 2.0)...
		// With gamma > 1 nothing is ever selected: expect the error.
		t.Logf("gamma too high correctly errored: %v", err)
		return
	}
	t.Log("gamma 2.0 still selected atoms via first-sample rule")
}
