// Package project implements DeepSecure's data-projection pre-processing
// (paper §3.2.1, Algorithms 1 and 2): the server streams its training
// data, greedily grows a dictionary of directions that the data is not
// yet well represented by (projection error above the threshold γ),
// periodically retrains the DL model on the low-dimensional embeddings,
// and stops adding atoms when the validation error stops improving
// (patience). The released projection is an orthonormal basis U of the
// dictionary's column space.
//
// Note on the released matrix: the paper releases W = D(DᵀD)⁻¹Dᵀ = UUᵀ
// (m×m) yet retrains the network on l-dimensional embeddings. For the
// input layer to shrink, the client must send l-dimensional vectors, so
// this implementation releases U (m×l) and the client computes y = Uᵀx
// (Algorithm 2). U and W = UUᵀ are interconvertible, so Proposition 3.1's
// security argument — only the subspace leaks, D itself cannot be
// reconstructed — carries over unchanged; the packaged tests verify
// W = UUᵀ and its idempotency/symmetry.
package project

import (
	"fmt"

	"deepsecure/internal/linalg"
	"deepsecure/internal/nn"
	"deepsecure/internal/train"
)

// Config controls Algorithm 1.
type Config struct {
	// Gamma is the projection-error threshold γ: samples whose relative
	// residual exceeds it contribute a new dictionary atom.
	Gamma float64
	// Batch is n_batch: how many streamed samples between retraining
	// checkpoints.
	Batch int
	// Patience is the number of checkpoints without validation
	// improvement before atom addition stops (early stopping).
	Patience int
	// MaxAtoms caps the dictionary size l (0 = no cap beyond m).
	MaxAtoms int
	// Retrain configures the per-checkpoint and final retraining runs.
	Retrain train.Config
	// RangeTarget bounds the magnitude of released embeddings: the basis
	// is divided by a public constant so that training embeddings fit in
	// [-RangeTarget, RangeTarget] — keeping the secure fixed-point path
	// (Q3.12 spans (-8,8)) out of saturation. 0 defaults to 6.
	RangeTarget float64
}

// DefaultConfig returns the settings used by the benchmark harness.
func DefaultConfig() Config {
	rc := train.DefaultConfig()
	rc.Epochs = 4
	return Config{Gamma: 0.25, Batch: 64, Patience: 3, Retrain: rc}
}

// Result carries the fitted projection and the retrained model.
type Result struct {
	// U is the released m×l orthonormal projection basis (Algorithm 2's
	// public matrix).
	U *linalg.Mat
	// Scale is the public normalization constant: clients compute
	// y = Uᵀx / Scale so embeddings fit the secure fixed-point range.
	Scale float64
	// Net is the DL model retrained on the embedded data.
	Net *nn.Network
	// Atoms is l, the embedding dimension.
	Atoms int
	// ValErr is the final validation error δ of the retrained model.
	ValErr float64
	// Checkpoints is the number of retraining checkpoints executed.
	Checkpoints int
}

// Embed computes y = Uᵀx / Scale — the client-side online step
// (Algorithm 2 with the public range normalization).
func (r *Result) Embed(x []float64) []float64 {
	y := r.U.T().MulVec(x)
	if r.Scale != 1 {
		for i := range y {
			y[i] /= r.Scale
		}
	}
	return y
}

// EmbedAll embeds a whole dataset.
func (r *Result) EmbedAll(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = r.Embed(x)
	}
	return out
}

// Projector returns W = UUᵀ, the matrix whose security Proposition 3.1
// analyzes.
func (r *Result) Projector() *linalg.Mat { return r.U.Mul(r.U.T()) }

// Fit runs Algorithm 1. netFactory builds the condensed DL architecture
// for a given input dimension (the hidden/output structure is up to the
// caller and typically mirrors the original model).
func Fit(
	trainX [][]float64, trainY []int,
	valX [][]float64, valY []int,
	cfg Config,
	netFactory func(inputDim int) (*nn.Network, error),
) (*Result, error) {
	if len(trainX) == 0 {
		return nil, fmt.Errorf("project: empty training set")
	}
	m := len(trainX[0])
	maxAtoms := cfg.MaxAtoms
	if maxAtoms <= 0 || maxAtoms > m {
		maxAtoms = m
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if cfg.Patience <= 0 {
		cfg.Patience = 3
	}

	// Orthonormal dictionary basis, grown column by column. Storing U
	// directly (instead of raw atoms D) makes the projection residual a
	// cheap Gram-Schmidt step; span(U) = span(D) at all times.
	var basis [][]float64
	deltaBest := 1.0
	itr := 0
	stopped := false
	checkpoints := 0

	residual := func(x []float64) ([]float64, float64, float64) {
		r := append([]float64(nil), x...)
		for _, u := range basis {
			d := linalg.Dot(u, r)
			for i := range r {
				r[i] -= d * u[i]
			}
		}
		return r, linalg.Norm(r), linalg.Norm(x)
	}

	retrainCheckpoint := func() (*nn.Network, float64, error) {
		net, err := netFactory(len(basis))
		if err != nil {
			return nil, 0, err
		}
		u := basisMat(m, basis)
		emb := embedAll(u, trainX)
		if _, err := train.Run(net, emb, trainY, cfg.Retrain); err != nil {
			return nil, 0, err
		}
		val := embedAll(u, valX)
		return net, train.Error(net, val, valY), nil
	}

	for i, x := range trainX {
		if !stopped && len(basis) < maxAtoms {
			// Lines 12–16: projection error Vp of the streamed sample.
			r, rn, xn := residual(x)
			vp := 1.0
			if len(basis) > 0 && xn > 1e-12 {
				vp = rn / xn
			}
			// Lines 23–26: extend the dictionary when under-represented.
			if vp > cfg.Gamma && rn > 1e-12 {
				for k := range r {
					r[k] /= rn
				}
				basis = append(basis, r)
			}
		}
		// Lines 32–35: retraining checkpoint every n_batch samples.
		if (i+1)%cfg.Batch == 0 && len(basis) > 0 && !stopped {
			_, delta, err := retrainCheckpoint()
			if err != nil {
				return nil, err
			}
			checkpoints++
			// Lines 17–22: patience-based early stopping on δ.
			if delta < deltaBest {
				deltaBest = delta
				itr = 0
			} else {
				itr++
				if itr >= cfg.Patience {
					stopped = true
				}
			}
		}
	}
	if len(basis) == 0 {
		return nil, fmt.Errorf("project: no atoms selected (gamma %g too high?)", cfg.Gamma)
	}

	// Derive the public range-normalization constant so that embeddings
	// stay inside the secure fixed-point range (Q3.12 spans (-8,8)). The
	// constant is public and scale-only, so Proposition 3.1's subspace
	// argument is unaffected.
	target := cfg.RangeTarget
	if target <= 0 {
		target = 6
	}
	u := basisMat(m, basis)
	maxAbs := 0.0
	ut := u.T()
	for _, x := range trainX {
		for _, v := range ut.MulVec(x) {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
	}
	scale := 1.0
	if maxAbs > target {
		scale = maxAbs / target
	}

	// Final retraining on the settled, normalized embedding (the
	// "UpdateDL" of the last stream position, with full epochs).
	res := &Result{U: u, Scale: scale, Atoms: len(basis), Checkpoints: checkpoints + 1}
	net, err := netFactory(len(basis))
	if err != nil {
		return nil, err
	}
	embTrain := res.EmbedAll(trainX)
	if _, err := train.Run(net, embTrain, trainY, cfg.Retrain); err != nil {
		return nil, err
	}
	// Keep the condensed model's logits inside the fixed-point range
	// (argmax-invariant output scaling).
	net.CalibrateOutput(embTrain, target)
	res.Net = net
	res.ValErr = train.Error(net, res.EmbedAll(valX), valY)
	return res, nil
}

func basisMat(m int, basis [][]float64) *linalg.Mat {
	u := linalg.New(m, len(basis))
	for j, col := range basis {
		u.SetCol(j, col)
	}
	return u
}

func embedAll(u *linalg.Mat, xs [][]float64) [][]float64 {
	ut := u.T()
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = ut.MulVec(x)
	}
	return out
}
